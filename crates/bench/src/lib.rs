//! Shared plumbing for the experiment binaries that regenerate the paper's
//! tables and figures (one binary per artefact; see DESIGN.md §3).
//!
//! The environment reproduces §3.1: two R*-trees with fan-out 50 over
//! Water-like and Roads-like point sets sharing one coordinate frame, a
//! 256-frame buffer split evenly between the trees, Euclidean distances,
//! and objects stored directly in the leaves. Dataset sizes scale with
//! `--scale` (or `SDJ_SCALE`); `1.0` reproduces the paper's cardinalities
//! (37,495 and 200,482).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use sdj_core::JoinStats;
use sdj_datagen::tiger;
use sdj_geom::Point;
use sdj_obs::{NdjsonWriter, ObsContext};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

/// Paper-like experiment environment.
pub struct Env {
    /// Water-like point set (the smaller relation).
    pub water: Vec<Point<2>>,
    /// Roads-like point set (the larger relation).
    pub roads: Vec<Point<2>>,
    /// R*-tree over `water`.
    pub water_tree: RTree<2>,
    /// R*-tree over `roads`.
    pub roads_tree: RTree<2>,
    /// The scale factor used.
    pub scale: f64,
}

/// The R*-tree configuration of §3.1: fan-out 50, half of a 256-frame
/// buffer per tree.
#[must_use]
pub fn paper_tree_config() -> RTreeConfig {
    RTreeConfig {
        buffer_frames: 128,
        ..RTreeConfig::default()
    }
}

/// Builds a tree from points via STR bulk loading (tree construction is not
/// the quantity under measurement in any experiment).
#[must_use]
pub fn build_tree(points: &[Point<2>]) -> RTree<2> {
    let items: Vec<(ObjectId, _)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (ObjectId(i as u64), p.to_rect()))
        .collect();
    RTree::bulk_load(paper_tree_config(), items)
}

impl Env {
    /// Creates the environment at the given scale with a fixed seed.
    #[must_use]
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n_water = ((tiger::WATER_FULL as f64) * scale).round().max(1.0) as usize;
        let n_roads = ((tiger::ROADS_FULL as f64) * scale).round().max(1.0) as usize;
        let water = tiger::water_like(n_water, seed);
        let roads = tiger::roads_like(n_roads, seed);
        let water_tree = build_tree(&water);
        let roads_tree = build_tree(&roads);
        Self {
            water,
            roads,
            water_tree,
            roads_tree,
            scale,
        }
    }

    /// Reads scale/seed from the command line (`--scale F`, `--seed N`) and
    /// the `SDJ_SCALE` environment variable, then builds the environment.
    #[must_use]
    pub fn from_args() -> Self {
        let args = CliArgs::parse();
        eprintln!(
            "# building Water/Roads environment at scale {} (seed {}) ...",
            args.scale, args.seed
        );
        let env = Self::new(args.scale, args.seed);
        eprintln!(
            "# Water: {} points (tree height {}), Roads: {} points (tree height {})",
            env.water.len(),
            env.water_tree.height(),
            env.roads.len(),
            env.roads_tree.height()
        );
        // Warm up the allocator and buffer pools so the first measured run
        // is not charged for cold-start effects.
        let _ = run_join(&env, false, sdj_core::JoinConfig::default(), None, 100);
        env
    }

    /// Resets both trees' I/O counters.
    pub fn reset_io(&self) {
        self.water_tree.reset_io_stats();
        self.roads_tree.reset_io_stats();
    }
}

/// Minimal CLI parsing shared by the experiment binaries.
pub struct CliArgs {
    /// Dataset scale in `(0, 1]`.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
}

impl CliArgs {
    /// Parses `--scale` / `--seed` from `std::env::args`, with `SDJ_SCALE`
    /// and `SDJ_SEED` as fallbacks.
    #[must_use]
    pub fn parse() -> Self {
        let mut scale: f64 = std::env::var("SDJ_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0.2);
        let mut seed: u64 = std::env::var("SDJ_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1998);
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" if i + 1 < args.len() => {
                    scale = args[i + 1].parse().expect("--scale takes a float");
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    seed = args[i + 1].parse().expect("--seed takes an integer");
                    i += 1;
                }
                other => panic!("unknown argument {other} (expected --scale F, --seed N)"),
            }
            i += 1;
        }
        Self { scale, seed }
    }
}

/// One measured run.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Join counters at the end of the run.
    pub stats: JoinStats,
    /// Result pairs actually produced.
    pub produced: u64,
}

/// Runs `f`, timing it; `f` returns (stats, produced-count).
pub fn measure(f: impl FnOnce() -> (JoinStats, u64)) -> Measurement {
    let start = Instant::now();
    let (stats, produced) = f();
    Measurement {
        seconds: start.elapsed().as_secs_f64(),
        stats,
        produced,
    }
}

/// Fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats seconds with three significant decimals.
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.3}")
}

/// Process-wide observability context from the environment, created once.
///
/// When `SDJ_OBS_NDJSON` names a path, every instrumented run in this
/// process appends its events there as NDJSON (one shared writer — the
/// experiment binaries call [`run_join`] many times per sweep and the log
/// must span the whole sweep). Unset or uncreatable ⇒ `None`, and runs stay
/// uninstrumented. Result events are thinned to every 64th so full-scale
/// sweeps don't produce multi-gigabyte logs.
#[must_use]
pub fn obs_from_env() -> Option<ObsContext> {
    static OBS: OnceLock<Option<ObsContext>> = OnceLock::new();
    OBS.get_or_init(|| {
        let path = std::env::var("SDJ_OBS_NDJSON")
            .ok()
            .filter(|p| !p.is_empty())?;
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(dir);
            }
        }
        match NdjsonWriter::create(&path) {
            Ok(w) => {
                eprintln!("# logging observability events to {path}");
                Some(
                    ObsContext::new(Arc::new(w))
                        .with_pop_sample_every(256)
                        .with_result_sample_every(64),
                )
            }
            Err(e) => {
                eprintln!("# SDJ_OBS_NDJSON: cannot create {path}: {e} (running unobserved)");
                None
            }
        }
    })
    .clone()
}

/// Runs a distance join (or semi-join when `semi` is set) over the
/// environment, consuming up to `take` results. `swap` joins Roads with
/// Water instead of Water with Roads.
#[must_use]
pub fn run_join(
    env: &Env,
    swap: bool,
    config: sdj_core::JoinConfig,
    semi: Option<sdj_core::SemiConfig>,
    take: u64,
) -> Measurement {
    env.reset_io();
    let (t1, t2) = if swap {
        (&env.roads_tree, &env.water_tree)
    } else {
        (&env.water_tree, &env.roads_tree)
    };
    measure(|| {
        let mut join = match semi {
            Some(sc) => sdj_core::DistanceJoin::semi(t1, t2, config, sc),
            None => sdj_core::DistanceJoin::new(t1, t2, config),
        };
        if let Some(ctx) = obs_from_env() {
            join = join.with_obs(&ctx);
        }
        let produced = join.by_ref().take(take as usize).count() as u64;
        (join.stats(), produced)
    })
}

/// Distances of the result pairs at the given 1-based ranks, from one
/// regular incremental join run (ranks must be ascending).
#[must_use]
pub fn join_distance_at_ranks(env: &Env, ranks: &[u64]) -> Vec<f64> {
    distance_at_ranks(env, ranks, None)
}

/// Same as [`join_distance_at_ranks`] for the distance semi-join.
#[must_use]
pub fn semi_distance_at_ranks(env: &Env, ranks: &[u64]) -> Vec<f64> {
    distance_at_ranks(
        env,
        ranks,
        Some(sdj_core::SemiConfig {
            filter: sdj_core::SemiFilter::Inside2,
            dmax: sdj_core::DmaxStrategy::Local,
        }),
    )
}

fn distance_at_ranks(env: &Env, ranks: &[u64], semi: Option<sdj_core::SemiConfig>) -> Vec<f64> {
    assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "ranks must ascend");
    let config = sdj_core::JoinConfig::default();
    let mut join = match semi {
        Some(sc) => sdj_core::DistanceJoin::semi(&env.water_tree, &env.roads_tree, config, sc),
        None => sdj_core::DistanceJoin::new(&env.water_tree, &env.roads_tree, config),
    };
    let mut out = Vec::with_capacity(ranks.len());
    let mut rank = 0u64;
    let mut last = 0.0f64;
    for &target in ranks {
        while rank < target {
            match join.next() {
                Some(r) => {
                    rank += 1;
                    last = r.distance;
                }
                None => break,
            }
        }
        out.push(last);
    }
    out
}

/// The standard result-count sweep of the paper's figures.
pub const PAIR_SWEEP: [u64; 6] = [1, 10, 100, 1_000, 10_000, 100_000];

/// Scales the sweep down when a scaled environment cannot produce the
/// larger counts (semi-joins are capped by the outer cardinality).
#[must_use]
pub fn sweep_up_to(max: u64) -> Vec<u64> {
    PAIR_SWEEP.iter().copied().filter(|k| *k <= max).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_at_small_scale() {
        let env = Env::new(0.002, 7);
        assert_eq!(env.water.len(), 75);
        assert_eq!(env.roads.len(), 401);
        assert_eq!(env.water_tree.len(), 75);
        assert_eq!(env.roads_tree.len(), 401);
    }

    #[test]
    fn sweep_capping() {
        assert_eq!(sweep_up_to(1_000), vec![1, 10, 100, 1_000]);
        assert_eq!(sweep_up_to(999), vec![1, 10, 100]);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["Pairs", "Time"]);
        t.row(&["1".into(), "0.5".into()]);
        t.print();
    }
}
