//! Non-incremental baselines the paper compares against.
//!
//! * [`nested_loop`] — compute the distance of every pair (§4.1.4's nested
//!   loop experiment), with top-`k` and full-sort variants.
//! * [`nn_semijoin`] — the §4.2.3 alternative semi-join: one nearest
//!   neighbour search per outer object, then a final sort.
//! * [`within_join`] — a non-incremental spatial join with a `within`
//!   predicate (synchronized R-tree traversal with plane sweep, after
//!   Brinkhoff et al.), followed by sorting the result by distance — the
//!   §4.1.4 alternative for computing a distance join when a maximum
//!   distance is known in advance.
//!
//! All baselines return results in ascending distance order so their output
//! is directly comparable with the incremental algorithms'.

mod nested;
mod nnsemi;
mod within;

pub use nested::{nested_loop_count, nested_loop_join, nested_loop_topk};
pub use nnsemi::{nn_semijoin, nn_semijoin_shuffled};
pub use within::within_join;

use sdj_rtree::ObjectId;

/// A result pair (same shape as the incremental join's results).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BaselinePair {
    /// Object from the first relation.
    pub oid1: ObjectId,
    /// Object from the second relation.
    pub oid2: ObjectId,
    /// Distance between the objects.
    pub distance: f64,
}

pub(crate) fn sort_pairs(pairs: &mut [BaselinePair]) {
    pairs.sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .expect("distances are never NaN")
    });
}
