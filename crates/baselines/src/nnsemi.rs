//! Nearest-neighbour based distance semi-join (§4.2.3).
//!
//! "For each object in relation A, we perform a nearest neighbor
//! computation in relation B, and sort the resulting array of distances
//! once all neighbors have been computed." Non-incremental: nothing can be
//! reported until every outer object has been processed.

use sdj_geom::Metric;
use sdj_rtree::RTree;
use sdj_storage::Result;

use crate::{sort_pairs, BaselinePair};

/// For each object of `outer`, its nearest object in `inner`, sorted by
/// distance. Uses the incremental nearest-neighbour iterator on the inner
/// tree, seeded from each outer object's MBR center (exact for point data).
///
/// Outer objects are visited in leaf-scan order, which gives consecutive
/// queries strong spatial locality in the inner tree's buffer pool — the
/// best case for this baseline. See [`nn_semijoin_shuffled`] for the
/// locality-free variant.
pub fn nn_semijoin<const D: usize>(
    outer: &RTree<D>,
    inner: &RTree<D>,
    metric: Metric,
) -> Result<Vec<BaselinePair>> {
    let objects = outer.all_objects()?;
    nn_semijoin_over(&objects, inner, metric)
}

/// [`nn_semijoin`] with the outer objects visited in a seeded random order,
/// modelling a relation scanned in storage order uncorrelated with space
/// (each query then descends a mostly cold buffer).
pub fn nn_semijoin_shuffled<const D: usize>(
    outer: &RTree<D>,
    inner: &RTree<D>,
    metric: Metric,
    seed: u64,
) -> Result<Vec<BaselinePair>> {
    let mut objects = outer.all_objects()?;
    // Fisher–Yates with a splitmix-style generator (no extra dependency).
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..objects.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        objects.swap(i, j);
    }
    nn_semijoin_over(&objects, inner, metric)
}

fn nn_semijoin_over<const D: usize>(
    objects: &[(sdj_rtree::ObjectId, sdj_geom::Rect<D>)],
    inner: &RTree<D>,
    metric: Metric,
) -> Result<Vec<BaselinePair>> {
    let mut out: Vec<BaselinePair> = Vec::with_capacity(objects.len());
    for (oid, mbr) in objects {
        let query = mbr.center();
        let mut nn = inner.nearest_neighbors(query, metric);
        if let Some(neighbor) = nn.next() {
            out.push(BaselinePair {
                oid1: *oid,
                oid2: neighbor.oid,
                distance: neighbor.distance,
            });
        } else if let Some(e) = nn.take_error() {
            return Err(e);
        }
    }
    sort_pairs(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_datagen::{uniform_points, unit_box};
    use sdj_geom::Point;
    use sdj_rtree::{ObjectId, RTreeConfig};

    fn tree(pts: &[Point<2>]) -> RTree<2> {
        let mut t = RTree::new(RTreeConfig::small(6));
        for (i, p) in pts.iter().enumerate() {
            t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
        }
        t
    }

    #[test]
    fn matches_bruteforce() {
        let a = uniform_points(60, &unit_box(), 41);
        let b = uniform_points(90, &unit_box(), 42);
        let ta = tree(&a);
        let tb = tree(&b);
        let got = nn_semijoin(&ta, &tb, Metric::Euclidean).unwrap();
        assert_eq!(got.len(), a.len());
        for w in got.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        for pair in &got {
            let p = &a[pair.oid1.0 as usize];
            let nn = b
                .iter()
                .map(|q| Metric::Euclidean.distance(p, q))
                .fold(f64::INFINITY, f64::min);
            assert!((pair.distance - nn).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_inner_yields_empty() {
        let a = uniform_points(5, &unit_box(), 1);
        let ta = tree(&a);
        let tb: RTree<2> = RTree::new(RTreeConfig::small(4));
        assert!(nn_semijoin(&ta, &tb, Metric::Euclidean).unwrap().is_empty());
    }
}
