//! Non-incremental within-distance spatial join.
//!
//! A synchronized depth-first traversal of the two R-trees (after Brinkhoff,
//! Kriegel & Seeger's R-tree spatial join, generalised from intersection to
//! a non-zero maximum distance with the plane-sweep modification sketched in
//! §2.2.2): node pairs whose regions are farther than `dmax` apart are
//! pruned; at the leaves, qualifying object pairs are collected. The full
//! result is then sorted by distance — which is exactly why the paper calls
//! this alternative unsuitable for "fast first" pipelines: "the entire
//! result would have to be computed and sorted before the first pair can be
//! reported".

use sdj_geom::Metric;
use sdj_rtree::{Entry, Node, PageId, RTree};
use sdj_storage::Result;

use crate::{sort_pairs, BaselinePair};

/// All object pairs within distance `[dmin, dmax]`, sorted ascending.
pub fn within_join<const D: usize>(
    tree1: &RTree<D>,
    tree2: &RTree<D>,
    metric: Metric,
    dmin: f64,
    dmax: f64,
) -> Result<Vec<BaselinePair>> {
    assert!(dmin >= 0.0 && dmin <= dmax, "invalid distance range");
    let mut out = Vec::new();
    if tree1.is_empty() || tree2.is_empty() {
        return Ok(out);
    }
    let mut stack: Vec<(PageId, PageId)> = vec![(tree1.root_id(), tree2.root_id())];
    while let Some((p1, p2)) = stack.pop() {
        let n1 = tree1.read_node(p1)?;
        let n2 = tree2.read_node(p2)?;
        match (n1.is_leaf(), n2.is_leaf()) {
            (true, true) => {
                sweep_leaves(&n1, &n2, metric, dmin, dmax, &mut out);
            }
            (false, true) => {
                for e1 in &n1.entries {
                    if metric.mindist_rect_rect(&e1.mbr, &n2.mbr()) <= dmax {
                        stack.push((e1.child_page(), p2));
                    }
                }
            }
            (true, false) => {
                for e2 in &n2.entries {
                    if metric.mindist_rect_rect(&n1.mbr(), &e2.mbr) <= dmax {
                        stack.push((p1, e2.child_page()));
                    }
                }
            }
            (false, false) => {
                for e1 in &n1.entries {
                    for e2 in &n2.entries {
                        if metric.mindist_rect_rect(&e1.mbr, &e2.mbr) <= dmax {
                            stack.push((e1.child_page(), e2.child_page()));
                        }
                    }
                }
            }
        }
    }
    sort_pairs(&mut out);
    Ok(out)
}

/// Plane sweep over two leaves: entries sorted by low x; for each left
/// entry, only right entries whose x-interval starts before
/// `x_hi + dmax` (and cannot have ended more than `dmax` before `x_lo`) are
/// tested.
fn sweep_leaves<const D: usize>(
    n1: &Node<D>,
    n2: &Node<D>,
    metric: Metric,
    dmin: f64,
    dmax: f64,
    out: &mut Vec<BaselinePair>,
) {
    let mut e1: Vec<&Entry<D>> = n1.entries.iter().collect();
    let mut e2: Vec<&Entry<D>> = n2.entries.iter().collect();
    let by_lo = |a: &&Entry<D>, b: &&Entry<D>| {
        a.mbr.lo()[0]
            .partial_cmp(&b.mbr.lo()[0])
            .expect("finite rectangles")
    };
    e1.sort_by(by_lo);
    e2.sort_by(by_lo);
    let max_width2 = e2.iter().map(|e| e.mbr.extent(0)).fold(0.0f64, f64::max);
    for a in &e1 {
        let lo_bound = a.mbr.lo()[0] - dmax - max_width2;
        let hi_bound = a.mbr.hi()[0] + dmax;
        let start = e2.partition_point(|e| e.mbr.lo()[0] < lo_bound);
        for b in &e2[start..] {
            if b.mbr.lo()[0] > hi_bound {
                break;
            }
            let d = metric.mindist_rect_rect(&a.mbr, &b.mbr);
            if d >= dmin && d <= dmax {
                out.push(BaselinePair {
                    oid1: a.object_id(),
                    oid2: b.object_id(),
                    distance: d,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_datagen::{tiger, uniform_points, unit_box};
    use sdj_geom::Point;
    use sdj_rtree::{ObjectId, RTreeConfig};

    fn tree(pts: &[Point<2>]) -> RTree<2> {
        let mut t = RTree::new(RTreeConfig::small(6));
        for (i, p) in pts.iter().enumerate() {
            t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
        }
        t
    }

    #[test]
    fn matches_bruteforce_within() {
        let a = tiger::water_like(150, 51);
        let b = tiger::roads_like(250, 51);
        let ta = tree(&a);
        let tb = tree(&b);
        let dmax = 0.05;
        let got = within_join(&ta, &tb, Metric::Euclidean, 0.0, dmax).unwrap();
        let mut want: Vec<f64> = a
            .iter()
            .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
            .filter(|d| *d <= dmax)
            .collect();
        want.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.distance - w).abs() < 1e-9);
        }
    }

    #[test]
    fn respects_minimum_distance() {
        let a = uniform_points(80, &unit_box(), 61);
        let b = uniform_points(80, &unit_box(), 62);
        let ta = tree(&a);
        let tb = tree(&b);
        let (dmin, dmax) = (0.02, 0.08);
        let got = within_join(&ta, &tb, Metric::Euclidean, dmin, dmax).unwrap();
        assert!(got.iter().all(|p| p.distance >= dmin && p.distance <= dmax));
        let want = a
            .iter()
            .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
            .filter(|d| *d >= dmin && *d <= dmax)
            .count();
        assert_eq!(got.len(), want);
    }

    #[test]
    fn zero_dmax_finds_only_coincident_points() {
        let a = vec![Point::xy(0.5, 0.5), Point::xy(0.1, 0.1)];
        let b = vec![Point::xy(0.5, 0.5), Point::xy(0.9, 0.9)];
        let got = within_join(&tree(&a), &tree(&b), Metric::Euclidean, 0.0, 0.0).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].oid1, ObjectId(0));
        assert_eq!(got[0].oid2, ObjectId(0));
    }
}
