//! Nested-loop distance join (§4.1.4).
//!
//! "Another way of computing a distance join is to use a nested loop
//! approach and compute the distance between all possible pairs of
//! objects." The paper's experiment reads the inner relation fully into
//! memory and only computes distances; [`nested_loop_count`] reproduces
//! exactly that, while [`nested_loop_join`] / [`nested_loop_topk`] add the
//! sorting a real implementation would need.

use std::collections::BinaryHeap;

use sdj_geom::{Metric, OrdF64, Rect};
use sdj_rtree::ObjectId;

use crate::{sort_pairs, BaselinePair};

/// Computes every pairwise distance, returning only how many fell within
/// `[dmin, dmax]` — the paper's "we only computed the distance values but
/// didn't store them" measurement.
#[must_use]
pub fn nested_loop_count<const D: usize>(
    outer: &[(ObjectId, Rect<D>)],
    inner: &[(ObjectId, Rect<D>)],
    metric: Metric,
    dmin: f64,
    dmax: f64,
) -> u64 {
    let mut n = 0;
    for (_, r1) in outer {
        for (_, r2) in inner {
            let d = metric.mindist_rect_rect(r1, r2);
            if d >= dmin && d <= dmax {
                n += 1;
            }
        }
    }
    n
}

/// Full nested-loop distance join: all pairs, sorted ascending by distance.
#[must_use]
pub fn nested_loop_join<const D: usize>(
    outer: &[(ObjectId, Rect<D>)],
    inner: &[(ObjectId, Rect<D>)],
    metric: Metric,
) -> Vec<BaselinePair> {
    let mut out = Vec::with_capacity(outer.len() * inner.len());
    for (o1, r1) in outer {
        for (o2, r2) in inner {
            out.push(BaselinePair {
                oid1: *o1,
                oid2: *o2,
                distance: metric.mindist_rect_rect(r1, r2),
            });
        }
    }
    sort_pairs(&mut out);
    out
}

/// Nested-loop distance join keeping only the `k` closest pairs (bounded
/// memory: a size-`k` max-heap).
#[must_use]
pub fn nested_loop_topk<const D: usize>(
    outer: &[(ObjectId, Rect<D>)],
    inner: &[(ObjectId, Rect<D>)],
    metric: Metric,
    k: usize,
) -> Vec<BaselinePair> {
    if k == 0 {
        return Vec::new();
    }
    // Max-heap on distance so the worst retained pair is on top.
    let mut heap: BinaryHeap<(OrdF64, u64, u64)> = BinaryHeap::with_capacity(k + 1);
    for (o1, r1) in outer {
        for (o2, r2) in inner {
            let d = metric.mindist_rect_rect(r1, r2);
            if heap.len() < k {
                heap.push((OrdF64::new(d), o1.0, o2.0));
            } else if let Some(top) = heap.peek() {
                if OrdF64::new(d) < top.0 {
                    heap.pop();
                    heap.push((OrdF64::new(d), o1.0, o2.0));
                }
            }
        }
    }
    let out: Vec<BaselinePair> = heap
        .into_sorted_vec()
        .into_iter()
        .map(|(d, o1, o2)| BaselinePair {
            oid1: ObjectId(o1),
            oid2: ObjectId(o2),
            distance: d.get(),
        })
        .collect();
    debug_assert!(out.windows(2).all(|w| w[0].distance <= w[1].distance));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;

    fn pts(coords: &[(f64, f64)]) -> Vec<(ObjectId, Rect<2>)> {
        coords
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (ObjectId(i as u64), Point::xy(*x, *y).to_rect()))
            .collect()
    }

    #[test]
    fn join_orders_ascending() {
        let a = pts(&[(0.0, 0.0), (10.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (20.0, 0.0)]);
        let out = nested_loop_join(&a, &b, Metric::Euclidean);
        assert_eq!(out.len(), 4);
        let ds: Vec<f64> = out.iter().map(|p| p.distance).collect();
        assert_eq!(ds, vec![1.0, 9.0, 10.0, 20.0]);
    }

    #[test]
    fn topk_matches_full_join_prefix() {
        let a = pts(&[(0.0, 0.0), (3.0, 4.0), (1.0, 1.0), (9.0, 9.0)]);
        let b = pts(&[(0.0, 1.0), (5.0, 5.0), (2.0, 2.0)]);
        let full = nested_loop_join(&a, &b, Metric::Euclidean);
        for k in 0..=full.len() + 2 {
            let top = nested_loop_topk(&a, &b, Metric::Euclidean, k);
            assert_eq!(top.len(), k.min(full.len()));
            for (t, f) in top.iter().zip(&full) {
                assert!((t.distance - f.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn count_respects_range() {
        let a = pts(&[(0.0, 0.0)]);
        let b = pts(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.0)]);
        assert_eq!(
            nested_loop_count(&a, &b, Metric::Euclidean, 0.0, f64::INFINITY),
            3
        );
        assert_eq!(nested_loop_count(&a, &b, Metric::Euclidean, 1.5, 2.5), 1);
        assert_eq!(nested_loop_count(&a, &b, Metric::Euclidean, 4.0, 9.0), 0);
    }
}
