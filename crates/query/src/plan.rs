//! Query building, planning and pipelined execution.
//!
//! §5 of the paper discusses two plans for "find the city nearest to any
//! river, such that the city has a population of more than 5 million":
//!
//! 1. **filter after join** — run the incremental distance join on the
//!    original indexes and drop result pairs failing the predicate; best
//!    when the predicate keeps most rows, and fully pipelined;
//! 2. **filter before join** — materialise the qualifying rows, build a new
//!    spatial index, and join those; pays an upfront indexing cost that is
//!    worth it when the predicate is highly selective.
//!
//! [`DistanceQuery::execute`] picks between them with a sampled selectivity
//! estimate (or obeys an explicit [`PlanChoice`]).

use sdj_core::{DistanceJoin, JoinConfig, SemiConfig};
use sdj_rtree::ObjectId;

use crate::predicate::Predicate;
use crate::relation::Relation;

/// One row of a distance-query result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryRow {
    /// Row id in the left relation.
    pub left: ObjectId,
    /// Row id in the right relation.
    pub right: ObjectId,
    /// Distance between the rows' spatial attributes.
    pub distance: f64,
}

/// Plan selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlanChoice {
    /// Let the optimizer decide from estimated selectivities.
    #[default]
    Auto,
    /// Force filter-after-join (fully pipelined).
    FilterAfterJoin,
    /// Force filter-before-join (materialise + re-index).
    FilterBeforeJoin,
}

/// Below this estimated fraction of surviving rows the optimizer prefers
/// materialising the filtered relation before joining.
const SELECTIVITY_THRESHOLD: f64 = 0.25;

/// A distance join / semi-join query in the shape of the paper's Figure 1.
pub struct DistanceQuery<'a> {
    left: &'a Relation,
    right: &'a Relation,
    config: JoinConfig,
    semi: Option<SemiConfig>,
    left_predicate: Option<Predicate>,
    right_predicate: Option<Predicate>,
    stop_after: Option<u64>,
    plan: PlanChoice,
}

impl<'a> DistanceQuery<'a> {
    /// `SELECT * FROM left, right ORDER BY distance(left.s, right.s)`.
    #[must_use]
    pub fn join(left: &'a Relation, right: &'a Relation) -> Self {
        Self {
            left,
            right,
            config: JoinConfig::default(),
            semi: None,
            left_predicate: None,
            right_predicate: None,
            stop_after: None,
            plan: PlanChoice::default(),
        }
    }

    /// The distance semi-join form (Figure 1b: `GROUP BY left.s, min(d)`).
    #[must_use]
    pub fn semi_join(left: &'a Relation, right: &'a Relation) -> Self {
        Self {
            semi: Some(SemiConfig::default()),
            ..Self::join(left, right)
        }
    }

    /// `WHERE d >= dmin AND d <= dmax`.
    #[must_use]
    pub fn within(mut self, dmin: f64, dmax: f64) -> Self {
        self.config = self.config.with_range(dmin, dmax);
        self
    }

    /// `STOP AFTER n`.
    #[must_use]
    pub fn stop_after(mut self, n: u64) -> Self {
        self.stop_after = Some(n);
        self
    }

    /// `ORDER BY d DESC`: farthest pairs first (§2.2.5's reverse ordering;
    /// for semi-joins this reports each left row's *farthest* partner).
    #[must_use]
    pub fn descending(mut self) -> Self {
        self.config.order = sdj_core::ResultOrder::Descending;
        if let Some(sc) = &mut self.semi {
            // d_max pruning bounds nearest partners; invalid in reverse.
            sc.dmax = sdj_core::DmaxStrategy::None;
        }
        self
    }

    /// A human-readable description of the plan the optimizer would pick
    /// (`EXPLAIN`-style), without executing anything.
    #[must_use]
    pub fn explain(&self) -> String {
        let plan = self.decide_plan();
        let mut out = String::new();
        out.push_str(&format!(
            "{} {} ⋈ {}",
            if self.semi.is_some() {
                "DistanceSemiJoin"
            } else {
                "DistanceJoin"
            },
            self.left.name(),
            self.right.name(),
        ));
        out.push_str(&format!(
            "\n  order: {:?}, range: [{}, {}]",
            self.config.order, self.config.min_distance, self.config.max_distance
        ));
        if let Some(n) = self.stop_after {
            out.push_str(&format!("\n  stop after: {n}"));
        }
        for (side, rel, pred) in [
            ("left", self.left, &self.left_predicate),
            ("right", self.right, &self.right_predicate),
        ] {
            if let Some(p) = pred {
                out.push_str(&format!(
                    "\n  {side} predicate: {p:?} (selectivity ≈ {:.2})",
                    rel.estimate_selectivity(p, 200)
                ));
            }
        }
        out.push_str(&format!("\n  plan: {plan:?}"));
        out
    }

    /// Additional selection on the left relation's attributes.
    #[must_use]
    pub fn where_left(mut self, predicate: Predicate) -> Self {
        self.left_predicate = Some(predicate);
        self
    }

    /// Additional selection on the right relation's attributes.
    #[must_use]
    pub fn where_right(mut self, predicate: Predicate) -> Self {
        self.right_predicate = Some(predicate);
        self
    }

    /// Overrides the join configuration (metric, traversal, queue, …).
    #[must_use]
    pub fn with_config(mut self, config: JoinConfig) -> Self {
        self.config = config;
        self
    }

    /// Forces a plan instead of the optimizer's choice.
    #[must_use]
    pub fn with_plan(mut self, plan: PlanChoice) -> Self {
        self.plan = plan;
        self
    }

    fn decide_plan(&self) -> PlanChoice {
        match self.plan {
            PlanChoice::Auto => {
                let sel = |rel: &Relation, p: &Option<Predicate>| {
                    p.as_ref().map_or(1.0, |p| rel.estimate_selectivity(p, 200))
                };
                let worst = sel(self.left, &self.left_predicate)
                    .min(sel(self.right, &self.right_predicate));
                if worst < SELECTIVITY_THRESHOLD
                    && (self.left_predicate.is_some() || self.right_predicate.is_some())
                {
                    PlanChoice::FilterBeforeJoin
                } else {
                    PlanChoice::FilterAfterJoin
                }
            }
            p => p,
        }
    }

    /// Executes the query, returning a pipelined result iterator.
    #[must_use]
    pub fn execute(self) -> QueryOutput<'a> {
        let plan = self.decide_plan();
        // `STOP AFTER` feeds the join's max-pairs estimation only when no
        // attribute predicate filters results after the join (a filtered
        // join may need more than `n` raw pairs).
        let post_filtering = matches!(plan, PlanChoice::FilterAfterJoin)
            && (self.left_predicate.is_some() || self.right_predicate.is_some());
        let mut config = self.config;
        if let (Some(n), false) = (self.stop_after, post_filtering) {
            config.max_pairs = Some(n);
        }
        match plan {
            PlanChoice::FilterAfterJoin | PlanChoice::Auto => QueryOutput {
                inner: Inner::Pipelined {
                    join: Box::new(make_join(self.left, self.right, config, self.semi)),
                    left: self.left,
                    right: self.right,
                    left_predicate: self.left_predicate,
                    right_predicate: self.right_predicate,
                },
                remaining: self.stop_after,
                plan: PlanChoice::FilterAfterJoin,
            },
            PlanChoice::FilterBeforeJoin => {
                let (left_sub, left_map) = self.left.filter(self.left_predicate.as_ref());
                let (right_sub, right_map) = self.right.filter(self.right_predicate.as_ref());
                QueryOutput {
                    inner: Inner::Materialized {
                        state: Box::new(MaterializedState {
                            left_sub,
                            right_sub,
                            left_map,
                            right_map,
                            config,
                            semi: self.semi,
                            started: false,
                            results: Vec::new(),
                            cursor: 0,
                        }),
                    },
                    remaining: self.stop_after,
                    plan: PlanChoice::FilterBeforeJoin,
                }
            }
        }
    }
}

fn make_join<'a>(
    left: &'a Relation,
    right: &'a Relation,
    config: JoinConfig,
    semi: Option<SemiConfig>,
) -> DistanceJoin<'a, 2> {
    match semi {
        Some(sc) => DistanceJoin::semi(left.tree(), right.tree(), config, sc),
        None => DistanceJoin::new(left.tree(), right.tree(), config),
    }
}

struct MaterializedState {
    left_sub: Relation,
    right_sub: Relation,
    left_map: Vec<ObjectId>,
    right_map: Vec<ObjectId>,
    config: JoinConfig,
    semi: Option<SemiConfig>,
    started: bool,
    results: Vec<QueryRow>,
    cursor: usize,
}

enum Inner<'a> {
    Pipelined {
        join: Box<DistanceJoin<'a, 2>>,
        left: &'a Relation,
        right: &'a Relation,
        left_predicate: Option<Predicate>,
        right_predicate: Option<Predicate>,
    },
    Materialized {
        state: Box<MaterializedState>,
    },
}

/// Pipelined query results.
pub struct QueryOutput<'a> {
    inner: Inner<'a>,
    remaining: Option<u64>,
    plan: PlanChoice,
}

impl QueryOutput<'_> {
    /// The plan that was selected.
    #[must_use]
    pub fn plan(&self) -> PlanChoice {
        self.plan
    }
}

impl Iterator for QueryOutput<'_> {
    type Item = QueryRow;

    fn next(&mut self) -> Option<QueryRow> {
        if let Some(0) = self.remaining {
            return None;
        }
        let row = match &mut self.inner {
            Inner::Pipelined {
                join,
                left,
                right,
                left_predicate,
                right_predicate,
            } => loop {
                let pair = join.next()?;
                if let Some(p) = left_predicate {
                    if !left.matches(pair.oid1, p) {
                        continue;
                    }
                }
                if let Some(p) = right_predicate {
                    if !right.matches(pair.oid2, p) {
                        continue;
                    }
                }
                break QueryRow {
                    left: pair.oid1,
                    right: pair.oid2,
                    distance: pair.distance,
                };
            },
            Inner::Materialized { state } => {
                if !state.started {
                    state.started = true;
                    let join =
                        make_join(&state.left_sub, &state.right_sub, state.config, state.semi);
                    // The sub-relations live inside `state`, so the join
                    // cannot outlive this call; drain it eagerly. The
                    // upfront cost is precisely the non-pipelined nature of
                    // this plan.
                    state.results = join
                        .map(|pair| QueryRow {
                            left: state.left_map[pair.oid1.0 as usize],
                            right: state.right_map[pair.oid2.0 as usize],
                            distance: pair.distance,
                        })
                        .collect();
                }
                if state.cursor >= state.results.len() {
                    return None;
                }
                state.cursor += 1;
                state.results[state.cursor - 1]
            }
        };
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Value};
    use sdj_geom::Point;
    use sdj_rtree::RTreeConfig;

    fn rivers() -> Relation {
        let mut r = Relation::with_tree_config("rivers", &["name"], RTreeConfig::small(4));
        for (i, name) in ["nile", "amazon", "danube"].iter().enumerate() {
            r.insert(Point::xy(10.0 * i as f64, 0.0), vec![Value::from(*name)]);
        }
        r
    }

    fn cities() -> Relation {
        let mut r =
            Relation::with_tree_config("cities", &["name", "population"], RTreeConfig::small(4));
        let data: [(&str, i64, f64, f64); 5] = [
            ("tiny", 10_000, 0.0, 1.0),
            ("metropolis", 8_000_000, 10.0, 2.0),
            ("megacity", 12_000_000, 22.0, 0.5),
            ("village", 500, 10.5, 0.1),
            ("capital", 6_000_000, 5.0, 5.0),
        ];
        for (name, pop, x, y) in data {
            r.insert(Point::xy(x, y), vec![Value::from(name), Value::from(pop)]);
        }
        r
    }

    #[test]
    fn plain_join_streams_by_distance() {
        let c = cities();
        let r = rivers();
        let rows: Vec<QueryRow> = DistanceQuery::join(&c, &r).execute().collect();
        assert_eq!(rows.len(), c.len() * r.len());
        for w in rows.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn city_nearest_to_any_river_with_population_filter() {
        let c = cities();
        let r = rivers();
        // "Find the city nearest to any river, such that the city has a
        // population of more than 5 million."
        let row = DistanceQuery::join(&c, &r)
            .where_left(Predicate::cmp("population", CmpOp::Gt, 5_000_000i64))
            .stop_after(1)
            .execute()
            .next()
            .unwrap();
        // metropolis sits 2.0 from the amazon river (10, 0); village is
        // closer but filtered out by the population predicate.
        assert_eq!(c.value(row.left, "name"), Some(Value::from("metropolis")));
        assert!((row.distance - 2.0).abs() < 1e-9);
    }

    #[test]
    fn both_plans_agree() {
        let c = cities();
        let r = rivers();
        let pred = Predicate::cmp("population", CmpOp::Gt, 5_000_000i64);
        let a: Vec<QueryRow> = DistanceQuery::join(&c, &r)
            .where_left(pred.clone())
            .with_plan(PlanChoice::FilterAfterJoin)
            .execute()
            .collect();
        let b: Vec<QueryRow> = DistanceQuery::join(&c, &r)
            .where_left(pred)
            .with_plan(PlanChoice::FilterBeforeJoin)
            .execute()
            .collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.left, y.left);
            assert_eq!(x.right, y.right);
            assert!((x.distance - y.distance).abs() < 1e-9);
        }
    }

    #[test]
    fn auto_plan_picks_materialisation_for_selective_predicates() {
        let c = cities();
        let r = rivers();
        // Only 1 of 5 cities matches: highly selective.
        let out = DistanceQuery::join(&c, &r)
            .where_left(Predicate::cmp("name", CmpOp::Eq, "capital"))
            .execute();
        assert_eq!(out.plan(), PlanChoice::FilterBeforeJoin);
        // No predicate: stay pipelined.
        let out = DistanceQuery::join(&c, &r).execute();
        assert_eq!(out.plan(), PlanChoice::FilterAfterJoin);
    }

    #[test]
    fn semi_join_groups_by_left() {
        let c = cities();
        let r = rivers();
        let rows: Vec<QueryRow> = DistanceQuery::semi_join(&c, &r).execute().collect();
        assert_eq!(rows.len(), c.len(), "one nearest river per city");
        let mut seen = std::collections::HashSet::new();
        for row in &rows {
            assert!(seen.insert(row.left));
        }
    }

    #[test]
    fn stop_after_limits_rows() {
        let c = cities();
        let r = rivers();
        let rows: Vec<QueryRow> = DistanceQuery::join(&c, &r)
            .stop_after(4)
            .execute()
            .collect();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn descending_returns_farthest_first() {
        let c = cities();
        let r = rivers();
        let rows: Vec<QueryRow> = DistanceQuery::join(&c, &r).descending().execute().collect();
        assert_eq!(rows.len(), c.len() * r.len());
        for w in rows.windows(2) {
            assert!(w[0].distance >= w[1].distance);
        }
        // Descending semi-join: one farthest river per city.
        let rows: Vec<QueryRow> = DistanceQuery::semi_join(&c, &r)
            .descending()
            .execute()
            .collect();
        assert_eq!(rows.len(), c.len());
    }

    #[test]
    fn explain_describes_the_plan() {
        let c = cities();
        let r = rivers();
        let q = DistanceQuery::join(&c, &r)
            .where_left(Predicate::cmp("name", CmpOp::Eq, "capital"))
            .stop_after(1);
        let plan = q.explain();
        assert!(plan.contains("DistanceJoin cities ⋈ rivers"));
        assert!(plan.contains("stop after: 1"));
        assert!(plan.contains("FilterBeforeJoin"), "{plan}");
    }

    #[test]
    fn within_range_filters_distances() {
        let c = cities();
        let r = rivers();
        let rows: Vec<QueryRow> = DistanceQuery::join(&c, &r)
            .within(0.0, 3.0)
            .execute()
            .collect();
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|row| row.distance <= 3.0));
    }
}
