//! Attribute values and selection predicates.

use std::fmt;

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Text(_) => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// A selection predicate over one relation's attributes.
#[derive(Clone, Debug)]
pub enum Predicate {
    /// `column <op> constant`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Value,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
}

impl Predicate {
    /// Builder: `column <op> value`.
    #[must_use]
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp {
            column: column.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Builder: conjunction.
    #[must_use]
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Builder: disjunction.
    #[must_use]
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the predicate against a row exposed as a column lookup.
    ///
    /// Unknown columns and type mismatches evaluate to `false` (SQL-style
    /// three-valued logic collapsed to false).
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<Value>) -> bool {
        match self {
            Predicate::Cmp { column, op, value } => {
                let Some(actual) = lookup(column) else {
                    return false;
                };
                compare(&actual, *op, value)
            }
            Predicate::And(a, b) => a.eval(lookup) && b.eval(lookup),
            Predicate::Or(a, b) => a.eval(lookup) || b.eval(lookup),
        }
    }
}

fn compare(actual: &Value, op: CmpOp, expected: &Value) -> bool {
    use std::cmp::Ordering;
    let ord = match (actual, expected) {
        (Value::Text(a), Value::Text(b)) => a.cmp(b),
        _ => match (actual.as_f64(), expected.as_f64()) {
            (Some(a), Some(b)) => match a.partial_cmp(&b) {
                Some(o) => o,
                None => return false,
            },
            _ => return false,
        },
    };
    matches!(
        (op, ord),
        (CmpOp::Eq, Ordering::Equal)
            | (CmpOp::Ne, Ordering::Less | Ordering::Greater)
            | (CmpOp::Lt, Ordering::Less)
            | (CmpOp::Le, Ordering::Less | Ordering::Equal)
            | (CmpOp::Gt, Ordering::Greater)
            | (CmpOp::Ge, Ordering::Greater | Ordering::Equal)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup(col: &str) -> Option<Value> {
        match col {
            "population" => Some(Value::Int(6_000_000)),
            "name" => Some(Value::Text("springfield".into())),
            "area" => Some(Value::Float(12.5)),
            _ => None,
        }
    }

    #[test]
    fn numeric_comparisons() {
        assert!(Predicate::cmp("population", CmpOp::Gt, 5_000_000i64).eval(&lookup));
        assert!(!Predicate::cmp("population", CmpOp::Lt, 5_000_000i64).eval(&lookup));
        assert!(Predicate::cmp("area", CmpOp::Ge, 12.5).eval(&lookup));
        // Mixed int/float comparisons coerce.
        assert!(Predicate::cmp("population", CmpOp::Gt, 5.9e6).eval(&lookup));
    }

    #[test]
    fn text_comparisons() {
        assert!(Predicate::cmp("name", CmpOp::Eq, "springfield").eval(&lookup));
        assert!(Predicate::cmp("name", CmpOp::Ne, "shelbyville").eval(&lookup));
        assert!(!Predicate::cmp("name", CmpOp::Eq, "shelbyville").eval(&lookup));
    }

    #[test]
    fn unknown_column_is_false() {
        assert!(!Predicate::cmp("missing", CmpOp::Eq, 1i64).eval(&lookup));
    }

    #[test]
    fn type_mismatch_is_false() {
        assert!(!Predicate::cmp("name", CmpOp::Gt, 3i64).eval(&lookup));
    }

    #[test]
    fn boolean_combinators() {
        let p = Predicate::cmp("population", CmpOp::Gt, 5_000_000i64).and(Predicate::cmp(
            "name",
            CmpOp::Eq,
            "springfield",
        ));
        assert!(p.eval(&lookup));
        let q = Predicate::cmp("population", CmpOp::Lt, 5i64).or(Predicate::cmp(
            "area",
            CmpOp::Gt,
            10.0,
        ));
        assert!(q.eval(&lookup));
        let r = Predicate::cmp("population", CmpOp::Lt, 5i64).and(Predicate::cmp(
            "area",
            CmpOp::Gt,
            10.0,
        ));
        assert!(!r.eval(&lookup));
    }
}
