//! Spatial relations: rows with a 2-d point attribute, typed columns, and an
//! R*-tree index maintained on the spatial attribute.

use std::collections::HashMap;

use sdj_geom::Point;
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

use crate::predicate::{Predicate, Value};

/// A named relation with one spatial attribute and arbitrary typed columns.
///
/// Row ids are dense (`0..len`) and double as the R-tree object ids.
pub struct Relation {
    name: String,
    columns: Vec<String>,
    column_index: HashMap<String, usize>,
    points: Vec<Point<2>>,
    values: Vec<Vec<Value>>, // row-major; values[row][col]
    tree: RTree<2>,
}

impl Relation {
    /// Creates an empty relation with the given non-spatial column names.
    #[must_use]
    pub fn new(name: &str, columns: &[&str]) -> Self {
        Self::with_tree_config(name, columns, RTreeConfig::default())
    }

    /// Creates an empty relation with a custom index configuration.
    #[must_use]
    pub fn with_tree_config(name: &str, columns: &[&str], config: RTreeConfig) -> Self {
        let columns: Vec<String> = columns.iter().map(|c| (*c).to_owned()).collect();
        let column_index = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        Self {
            name: name.to_owned(),
            columns,
            column_index,
            points: Vec::new(),
            values: Vec::new(),
            tree: RTree::new(config),
        }
    }

    /// The relation's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the relation has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Column names.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The spatial index over the relation's points.
    #[must_use]
    pub fn tree(&self) -> &RTree<2> {
        &self.tree
    }

    /// Inserts a row; `values` must match the declared columns.
    ///
    /// # Panics
    /// Panics if the value count does not match the column count.
    pub fn insert(&mut self, point: Point<2>, values: Vec<Value>) -> ObjectId {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity mismatch for relation {}",
            self.name
        );
        let id = ObjectId(self.points.len() as u64);
        self.tree
            .insert(id, point.to_rect())
            .expect("simulated disk cannot fail");
        self.points.push(point);
        self.values.push(values);
        id
    }

    /// The spatial attribute of a row.
    #[must_use]
    pub fn point(&self, id: ObjectId) -> Point<2> {
        self.points[id.0 as usize]
    }

    /// A row's value in the named column.
    #[must_use]
    pub fn value(&self, id: ObjectId, column: &str) -> Option<Value> {
        let col = *self.column_index.get(column)?;
        self.values.get(id.0 as usize).map(|row| row[col].clone())
    }

    /// Evaluates a predicate against a row.
    #[must_use]
    pub fn matches(&self, id: ObjectId, predicate: &Predicate) -> bool {
        predicate.eval(&|col| self.value(id, col))
    }

    /// Fraction of rows satisfying `predicate`, estimated from a sample of
    /// at most `sample` rows (evenly strided). Used by the toy optimizer.
    #[must_use]
    pub fn estimate_selectivity(&self, predicate: &Predicate, sample: usize) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let stride = (self.len() / sample.max(1)).max(1);
        let mut hits = 0usize;
        let mut tested = 0usize;
        let mut i = 0usize;
        while i < self.len() {
            if self.matches(ObjectId(i as u64), predicate) {
                hits += 1;
            }
            tested += 1;
            i += stride;
        }
        hits as f64 / tested as f64
    }

    /// Materialises the sub-relation of rows satisfying `predicate` (all
    /// rows when `None`), re-indexing them — the "filter before join" plan.
    /// The returned relation's row ids map back via the second return value.
    #[must_use]
    pub fn filter(&self, predicate: Option<&Predicate>) -> (Relation, Vec<ObjectId>) {
        let mut out = Relation::with_tree_config(
            &format!("{}_filtered", self.name),
            &self.columns.iter().map(String::as_str).collect::<Vec<_>>(),
            *self.tree.config(),
        );
        let mut mapping = Vec::new();
        for i in 0..self.len() {
            let id = ObjectId(i as u64);
            if predicate.is_none_or(|p| self.matches(id, p)) {
                out.insert(self.points[i], self.values[i].clone());
                mapping.push(id);
            }
        }
        (out, mapping)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn cities() -> Relation {
        let mut r =
            Relation::with_tree_config("cities", &["name", "population"], RTreeConfig::small(4));
        for (i, (name, pop)) in [
            ("alpha", 100_000i64),
            ("beta", 6_000_000),
            ("gamma", 2_000_000),
            ("delta", 9_000_000),
        ]
        .iter()
        .enumerate()
        {
            r.insert(
                Point::xy(i as f64, i as f64),
                vec![Value::from(*name), Value::from(*pop)],
            );
        }
        r
    }

    #[test]
    fn insert_and_lookup() {
        let r = cities();
        assert_eq!(r.len(), 4);
        assert_eq!(r.value(ObjectId(1), "name"), Some(Value::from("beta")));
        assert_eq!(
            r.value(ObjectId(1), "population"),
            Some(Value::from(6_000_000i64))
        );
        assert_eq!(r.value(ObjectId(1), "missing"), None);
        assert_eq!(r.point(ObjectId(2)), Point::xy(2.0, 2.0));
        assert_eq!(r.tree().len(), 4);
    }

    #[test]
    fn filter_materialises_and_maps_back() {
        let r = cities();
        let big = Predicate::cmp("population", CmpOp::Gt, 5_000_000i64);
        let (filtered, mapping) = r.filter(Some(&big));
        let (all, all_map) = r.filter(None);
        assert_eq!(all.len(), r.len());
        assert_eq!(all_map.len(), r.len());
        assert_eq!(filtered.len(), 2);
        assert_eq!(mapping, vec![ObjectId(1), ObjectId(3)]);
        assert_eq!(
            filtered.value(ObjectId(0), "name"),
            Some(Value::from("beta"))
        );
        assert_eq!(filtered.tree().len(), 2);
    }

    #[test]
    fn selectivity_estimation() {
        let r = cities();
        let big = Predicate::cmp("population", CmpOp::Gt, 5_000_000i64);
        let sel = r.estimate_selectivity(&big, 100);
        assert!((sel - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut r = cities();
        r.insert(Point::xy(0.0, 0.0), vec![Value::from("x")]);
    }
}
