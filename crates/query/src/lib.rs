//! A small pipelined query layer over the incremental distance join.
//!
//! Figure 1 of the paper defines the distance join and distance semi-join in
//! SQL terms — distance ranges in the `WHERE` clause, `ORDER BY` distance,
//! and the `STOP AFTER` extension. This crate provides just enough of a
//! query engine to execute those statements end to end:
//!
//! * [`Relation`] — a named table with a 2-d spatial attribute, typed
//!   columns and an R*-tree index,
//! * [`Predicate`] — attribute comparisons usable as additional selection
//!   conditions,
//! * [`DistanceQuery`] — the query builder; [`DistanceQuery::execute`]
//!   returns a pipelined iterator so a consumer fetching `n` rows pays only
//!   for `n` rows,
//! * a toy optimizer implementing the two plans §5 discusses for queries
//!   like "find the city nearest to any river with population > 5 million":
//!   filter-after-join (pipelined, good for low-selectivity predicates) and
//!   filter-before-join (materialise + re-index, good for highly selective
//!   predicates).

mod plan;
mod predicate;
mod relation;

pub use plan::{DistanceQuery, PlanChoice, QueryOutput, QueryRow};
pub use predicate::{CmpOp, Predicate, Value};
pub use relation::Relation;
