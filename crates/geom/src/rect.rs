//! Axis-aligned hyper-rectangles (minimum bounding rectangles).

use crate::Point;

/// An axis-aligned hyper-rectangle in `D` dimensions, described by its lower
/// and upper corners. The R-tree uses `Rect` both as node regions and as
/// object bounding rectangles.
///
/// An *empty* rectangle (used as the identity for [`Rect::union`]) has
/// `lo = +inf`, `hi = -inf` on every axis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect<const D: usize> {
    lo: [f64; D],
    hi: [f64; D],
}

impl<const D: usize> Rect<D> {
    /// Creates a rectangle from its corner coordinate arrays.
    ///
    /// # Panics
    /// Panics in debug builds if `lo[i] > hi[i]` for some axis of a
    /// non-empty rectangle.
    #[must_use]
    pub fn new(lo: [f64; D], hi: [f64; D]) -> Self {
        debug_assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h) || Self { lo, hi }.is_empty_marker(),
            "invalid rect: lo {lo:?} hi {hi:?}"
        );
        Self { lo, hi }
    }

    /// The empty rectangle: the identity element for [`Rect::union`], which
    /// intersects nothing and contains nothing.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            lo: [f64::INFINITY; D],
            hi: [f64::NEG_INFINITY; D],
        }
    }

    fn is_empty_marker(&self) -> bool {
        self.lo.iter().zip(&self.hi).any(|(l, h)| l > h)
    }

    /// True if this rectangle is empty (contains no point).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.is_empty_marker()
    }

    /// Smallest rectangle containing both corner points (in any order).
    #[must_use]
    pub fn from_corners(a: &Point<D>, b: &Point<D>) -> Self {
        Self {
            lo: *a.min_with(b).coords(),
            hi: *a.max_with(b).coords(),
        }
    }

    /// Smallest rectangle containing all the given points. Returns
    /// [`Rect::empty`] for an empty iterator.
    pub fn bounding<'a>(points: impl IntoIterator<Item = &'a Point<D>>) -> Self {
        let mut out = Self::empty();
        for p in points {
            out = out.union(&p.to_rect());
        }
        out
    }

    /// Lower corner.
    #[inline]
    #[must_use]
    pub fn lo(&self) -> &[f64; D] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    #[must_use]
    pub fn hi(&self) -> &[f64; D] {
        &self.hi
    }

    /// Side length along `axis` (zero for empty rectangles).
    #[inline]
    #[must_use]
    pub fn extent(&self, axis: usize) -> f64 {
        (self.hi[axis] - self.lo[axis]).max(0.0)
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> Point<D> {
        let mut c = [0.0; D];
        for (o, (l, h)) in c.iter_mut().zip(self.lo.iter().zip(&self.hi)) {
            *o = 0.5 * (l + h);
        }
        Point::new(c)
    }

    /// Hyper-volume (product of extents). Zero for empty or degenerate
    /// rectangles.
    #[must_use]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|a| self.extent(a)).product()
    }

    /// Sum of extents (the "margin" used by the R*-tree split heuristic).
    #[must_use]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        (0..D).map(|a| self.extent(a)).sum()
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for a in 0..D {
            lo[a] = self.lo[a].min(other.lo[a]);
            hi[a] = self.hi[a].max(other.hi[a]);
        }
        Self { lo, hi }
    }

    /// Intersection of `self` and `other`; empty if they do not overlap.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for a in 0..D {
            lo[a] = self.lo[a].max(other.lo[a]);
            hi[a] = self.hi[a].min(other.hi[a]);
            if lo[a] > hi[a] {
                return Self::empty();
            }
        }
        Self { lo, hi }
    }

    /// Volume of the intersection (the "overlap" of the R*-tree heuristics).
    #[must_use]
    pub fn overlap_area(&self, other: &Self) -> f64 {
        self.intersection(other).area()
    }

    /// True if the closed rectangles share at least one point.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        (0..D).all(|a| self.lo[a] <= other.hi[a] && other.lo[a] <= self.hi[a])
    }

    /// True if `self` fully contains `other`.
    #[must_use]
    pub fn contains_rect(&self, other: &Self) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        (0..D).all(|a| self.lo[a] <= other.lo[a] && other.hi[a] <= self.hi[a])
    }

    /// True if the closed rectangle contains the point.
    #[must_use]
    pub fn contains_point(&self, p: &Point<D>) -> bool {
        !self.is_empty() && (0..D).all(|a| self.lo[a] <= p.coord(a) && p.coord(a) <= self.hi[a])
    }

    /// Increase in area caused by enlarging `self` to contain `other`.
    #[must_use]
    pub fn enlargement(&self, other: &Self) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The `2^D` corner points of the rectangle.
    ///
    /// Corners are enumerated in binary-counter order: bit `a` of the index
    /// selects `hi` (set) or `lo` (clear) on axis `a`.
    #[must_use]
    pub fn corners(&self) -> Vec<Point<D>> {
        let n = 1usize << D;
        let mut out = Vec::with_capacity(n);
        for mask in 0..n {
            let mut c = [0.0; D];
            for (a, v) in c.iter_mut().enumerate() {
                *v = if mask & (1 << a) != 0 {
                    self.hi[a]
                } else {
                    self.lo[a]
                };
            }
            out.push(Point::new(c));
        }
        out
    }

    /// The `2 * D` faces of the rectangle. Each face is returned as a
    /// (degenerate along one axis) rectangle. `faces()[2*a]` is the low face
    /// on axis `a`, `faces()[2*a + 1]` the high face.
    #[must_use]
    pub fn faces(&self) -> Vec<Rect<D>> {
        let mut out = Vec::with_capacity(2 * D);
        for a in 0..D {
            let mut lo = self.lo;
            let mut hi = self.hi;
            hi[a] = self.lo[a];
            out.push(Self { lo, hi });
            lo[a] = self.hi[a];
            hi[a] = self.hi[a];
            out.push(Self { lo, hi });
        }
        out
    }

    /// True if every coordinate is finite (empty rectangles are not finite).
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.lo.iter().chain(&self.hi).all(|c| c.is_finite())
    }
}

impl<const D: usize> Default for Rect<D> {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> Rect<2> {
        Rect::new(lo, hi)
    }

    #[test]
    fn area_and_margin() {
        let q = r([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(q.area(), 6.0);
        assert_eq!(q.margin(), 5.0);
        assert_eq!(q.center(), Point::xy(1.0, 1.5));
    }

    #[test]
    fn empty_rect_identities() {
        let e = Rect::<2>::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let q = r([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(e.union(&q), q);
        assert!(!e.intersects(&q));
        assert!(q.contains_rect(&e));
        assert!(!e.contains_rect(&q));
    }

    #[test]
    fn union_and_intersection() {
        let a = r([0.0, 0.0], [2.0, 2.0]);
        let b = r([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.union(&b), r([0.0, 0.0], [3.0, 3.0]));
        assert_eq!(a.intersection(&b), r([1.0, 1.0], [2.0, 2.0]));
        assert_eq!(a.overlap_area(&b), 1.0);
        assert!(a.intersects(&b));
    }

    #[test]
    fn disjoint_rects() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([2.0, 2.0], [3.0, 3.0]);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn touching_rects_intersect() {
        let a = r([0.0, 0.0], [1.0, 1.0]);
        let b = r([1.0, 0.0], [2.0, 1.0]);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r([0.0, 0.0], [10.0, 10.0]);
        let inner = r([2.0, 2.0], [3.0, 3.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_point(&Point::xy(0.0, 10.0)));
        assert!(!outer.contains_point(&Point::xy(-0.1, 5.0)));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let outer = r([0.0, 0.0], [10.0, 10.0]);
        let inner = r([2.0, 2.0], [3.0, 3.0]);
        assert_eq!(outer.enlargement(&inner), 0.0);
        assert_eq!(inner.enlargement(&outer), 100.0 - 1.0);
    }

    #[test]
    fn corners_enumeration() {
        let q = r([0.0, 0.0], [1.0, 2.0]);
        let cs = q.corners();
        assert_eq!(cs.len(), 4);
        assert!(cs.contains(&Point::xy(0.0, 0.0)));
        assert!(cs.contains(&Point::xy(1.0, 0.0)));
        assert!(cs.contains(&Point::xy(0.0, 2.0)));
        assert!(cs.contains(&Point::xy(1.0, 2.0)));
    }

    #[test]
    fn faces_are_degenerate_slabs() {
        let q = r([0.0, 0.0], [1.0, 2.0]);
        let fs = q.faces();
        assert_eq!(fs.len(), 4);
        // Low x face spans full y range at x = 0.
        assert_eq!(fs[0], r([0.0, 0.0], [0.0, 2.0]));
        // High x face at x = 1.
        assert_eq!(fs[1], r([1.0, 0.0], [1.0, 2.0]));
        // Low/high y faces.
        assert_eq!(fs[2], r([0.0, 0.0], [1.0, 0.0]));
        assert_eq!(fs[3], r([0.0, 2.0], [1.0, 2.0]));
        for f in &fs {
            assert!(q.contains_rect(f));
            assert_eq!(f.area(), 0.0);
        }
    }

    #[test]
    fn bounding_points() {
        let pts = [
            Point::xy(1.0, 5.0),
            Point::xy(-2.0, 3.0),
            Point::xy(0.0, 7.0),
        ];
        let b = Rect::bounding(pts.iter());
        assert_eq!(b, r([-2.0, 3.0], [1.0, 7.0]));
        let none: [Point<2>; 0] = [];
        assert!(Rect::bounding(none.iter()).is_empty());
    }

    #[test]
    fn from_corners_any_order() {
        let a = Point::xy(3.0, 1.0);
        let b = Point::xy(1.0, 4.0);
        assert_eq!(Rect::from_corners(&a, &b), r([1.0, 1.0], [3.0, 4.0]));
    }

    #[test]
    fn three_dimensional_area() {
        let q: Rect<3> = Rect::new([0.0; 3], [2.0, 3.0, 4.0]);
        assert_eq!(q.area(), 24.0);
        assert_eq!(q.margin(), 9.0);
        assert_eq!(q.corners().len(), 8);
        assert_eq!(q.faces().len(), 6);
    }
}
