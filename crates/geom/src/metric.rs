//! Distance metrics and the bound functions used by the join algorithms.
//!
//! The incremental distance join needs a family of *consistent* distance
//! functions (paper §2.2): for items `i1`, `i2` (objects, object bounding
//! rectangles, or node regions), the queue key `MINDIST(i1, i2)` must never
//! exceed the distance of any object/object pair generated from `(i1, i2)`.
//!
//! Three kinds of bounds are provided here:
//!
//! * **MINDIST** — a lower bound on the distance of *every* object pair
//!   generated from the pair. Used as the priority-queue key.
//! * **MAXDIST** — an upper bound on the distance of *every* generated object
//!   pair (the distance between the farthest corners). Used for pruning
//!   against a minimum distance (`MAXDIST < Dmin` ⇒ discard) and for the
//!   maximum-distance estimation of §2.2.4, where eligibility requires that
//!   *all* generated pairs fall inside `[Dmin, Dmax]`.
//! * **MINMAXDIST** — an upper bound on the distance of the *closest*
//!   generated object pair (Roussopoulos et al.'s bound, relying on minimal
//!   bounding rectangles: every face of an MBR touches its object). Used by
//!   the distance semi-join's `d_max` pruning strategies, where knowing that
//!   *some* partner exists within a radius lets further pairs be discarded.

use crate::{Point, Rect};

/// A distance metric on points; all bound functions are derived from it.
///
/// The paper's experiments use [`Metric::Euclidean`]; the Manhattan (`L1`)
/// and Chessboard (`L∞`) metrics are supported as §2.2 promises.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Metric {
    /// `L2`: straight-line distance.
    #[default]
    Euclidean,
    /// `L1`: sum of coordinate differences.
    Manhattan,
    /// `L∞`: maximum coordinate difference.
    Chessboard,
}

impl Metric {
    /// Folds a per-axis absolute difference into the running accumulator.
    ///
    /// Deliberately *not* `mul_add`: the squared-key contract ([`KeySpace`],
    /// `kernels`) promises bit-identical results for the exact two-rounding
    /// sequence below wherever it is evaluated, and a fused operation would
    /// also lower to a libm call on targets without native FMA — the wrong
    /// trade for the hottest arithmetic in the join.
    #[allow(clippy::suboptimal_flops)]
    #[inline]
    pub(crate) fn accumulate(self, acc: f64, delta: f64) -> f64 {
        match self {
            Metric::Euclidean => acc + delta * delta,
            Metric::Manhattan => acc + delta,
            Metric::Chessboard => acc.max(delta),
        }
    }

    /// Finishes an accumulated value into a distance.
    #[inline]
    fn finish(self, acc: f64) -> f64 {
        match self {
            Metric::Euclidean => acc.sqrt(),
            Metric::Manhattan | Metric::Chessboard => acc,
        }
    }

    /// Combines an iterator of per-axis absolute differences into a distance.
    #[inline]
    fn combine(self, deltas: impl Iterator<Item = f64>) -> f64 {
        self.finish(deltas.fold(0.0, |acc, d| self.accumulate(acc, d)))
    }

    /// Distance between two points.
    #[must_use]
    pub fn distance<const D: usize>(self, p: &Point<D>, q: &Point<D>) -> f64 {
        self.combine(
            p.coords()
                .iter()
                .zip(q.coords())
                .map(|(a, b)| (a - b).abs()),
        )
    }

    /// MINDIST between a point and a rectangle: the distance from the point
    /// to the nearest point of the rectangle (zero if inside).
    ///
    /// Returns `+inf` for empty rectangles, which makes pairs involving empty
    /// regions sort last and never produce results.
    #[must_use]
    pub fn mindist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| axis_gap(p.coord(a), p.coord(a), r.lo()[a], r.hi()[a])))
    }

    /// MINDIST between two rectangles: the distance between their nearest
    /// points (zero if they intersect).
    #[must_use]
    pub fn mindist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| axis_gap(r.lo()[a], r.hi()[a], s.lo()[a], s.hi()[a])))
    }

    /// MAXDIST between a point and a rectangle: distance from the point to
    /// the farthest point of the rectangle.
    #[must_use]
    pub fn maxdist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| {
            let c = p.coord(a);
            (c - r.lo()[a]).abs().max((c - r.hi()[a]).abs())
        }))
    }

    /// MAXDIST between two rectangles: an upper bound on the distance of any
    /// point of one to any point of the other.
    #[must_use]
    pub fn maxdist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| {
            let d1 = (r.hi()[a] - s.lo()[a]).abs();
            let d2 = (s.hi()[a] - r.lo()[a]).abs();
            d1.max(d2)
        }))
    }

    /// MINMAXDIST between a point and a minimal bounding rectangle: an upper
    /// bound on the distance from `p` to the nearest object bounded by `r`
    /// (Roussopoulos et al., as recalled in §2.2.3 of the paper).
    ///
    /// For each axis `k`, the object must touch one of the two faces
    /// orthogonal to `k`; taking the nearer face on axis `k` and the farther
    /// coordinate on every other axis yields an upper bound, and the minimum
    /// over `k` is the tightest such bound.
    #[must_use]
    pub fn minmaxdist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        // Precompute the "far" contribution of each axis, and the accumulator
        // over all far contributions so each candidate axis k can be formed
        // cheaply. (For Chessboard, `max` is not invertible, so fall back to
        // recomputing per k; D is small.)
        let near = |a: usize| {
            let c = p.coord(a);
            if c <= 0.5 * (r.lo()[a] + r.hi()[a]) {
                (c - r.lo()[a]).abs()
            } else {
                (c - r.hi()[a]).abs()
            }
        };
        let far = |a: usize| {
            let c = p.coord(a);
            (c - r.lo()[a]).abs().max((c - r.hi()[a]).abs())
        };
        let mut best = f64::INFINITY;
        for k in 0..D {
            let acc = (0..D).fold(0.0, |acc, a| {
                self.accumulate(acc, if a == k { near(a) } else { far(a) })
            });
            best = best.min(self.finish(acc));
        }
        best
    }

    /// MINMAXDIST between two minimal bounding rectangles: an upper bound on
    /// the distance between the *closest* pair of objects bounded by `r` and
    /// `s` respectively (paper §2.2.3,
    /// `d_max(b1, b2) = min_{f_j ∈ F(b1), f_k ∈ F(b2)} max_{p ∈ f_j, q ∈ f_k} d(p, q)`).
    ///
    /// The maximum of a metric distance over two axis-aligned faces is
    /// attained at face corners, so each face pair is evaluated by
    /// enumerating corner pairs. Cost is `O(D^2 · 4^D)`; fine for the low
    /// dimensions spatial databases use and only paid when semi-join pruning
    /// or estimation asks for it.
    #[must_use]
    pub fn minmaxdist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        // Degenerate rectangles are points; their single "face" makes the
        // face-pair minimax collapse to the (much cheaper) point/rect form.
        // This is the hot path for point data sets, where every object
        // bounding rectangle is degenerate.
        if r.margin() == 0.0 {
            return self.minmaxdist_point_rect(&r.center(), s);
        }
        if s.margin() == 0.0 {
            return self.minmaxdist_point_rect(&s.center(), r);
        }
        let faces_r = r.faces();
        let faces_s = s.faces();
        let mut best = f64::INFINITY;
        for fr in &faces_r {
            let cr = fr.corners();
            for fs in &faces_s {
                let cs = fs.corners();
                let mut face_max: f64 = 0.0;
                for p in &cr {
                    for q in &cs {
                        face_max = face_max.max(self.distance(p, q));
                    }
                }
                best = best.min(face_max);
            }
        }
        best
    }
}

/// A monotone *key domain* for one metric: the domain in which priority-queue
/// keys, pruning bounds and tier boundaries live.
///
/// For the Euclidean metric the natural key is the **squared** distance —
/// every bound function is a fold of per-axis terms finished by a single
/// `sqrt`, and because `sqrt` is strictly monotone on `[0, +inf]` the
/// ordering of squared keys is exactly the ordering of distances. Working in
/// the squared domain removes the `sqrt` from every bound evaluation and
/// comparison; the one remaining `sqrt` happens when a key is converted back
/// to a reportable distance with [`KeySpace::to_distance`].
///
/// Manhattan and Chessboard distances are already sums/maxima with an
/// identity finish, so their key domain is the distance itself and every
/// conversion below is a no-op.
///
/// Bitwise note: the scalar Euclidean bound is `sqrt(acc)` of an accumulator
/// folded over axes `0..D`; the key-domain bound is that same `acc`, so
/// `to_distance(key)` reproduces the scalar distance *bit for bit* as long as
/// callers keep the axis fold order (all functions here and in
/// [`kernels`](crate::kernels) do).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KeySpace {
    metric: Metric,
    squared: bool,
}

impl KeySpace {
    /// The sqrt-free key domain for `metric`: squared keys for Euclidean,
    /// identity for Manhattan/Chessboard.
    #[must_use]
    pub fn squared(metric: Metric) -> Self {
        Self {
            metric,
            squared: matches!(metric, Metric::Euclidean),
        }
    }

    /// The identity key domain: keys *are* distances for every metric. Kept
    /// for A/B comparison against the squared domain.
    #[must_use]
    pub fn plain(metric: Metric) -> Self {
        Self {
            metric,
            squared: false,
        }
    }

    /// The underlying metric.
    #[must_use]
    pub fn metric(self) -> Metric {
        self.metric
    }

    /// True if keys are squared distances.
    #[must_use]
    pub fn is_squared(self) -> bool {
        self.squared
    }

    /// Maps a distance into the key domain (monotone on `[0, +inf]`).
    #[must_use]
    pub fn to_key(self, d: f64) -> f64 {
        if self.squared {
            d * d
        } else {
            d
        }
    }

    /// Maps a key back to a distance. This is the *only* place a `sqrt` is
    /// paid in the squared domain.
    #[must_use]
    pub fn to_distance(self, k: f64) -> f64 {
        if self.squared {
            k.sqrt()
        } else {
            k
        }
    }

    /// Finishes a metric accumulator into a key (identity in the squared
    /// domain — that is the whole point).
    #[inline]
    pub(crate) fn finish_acc(self, acc: f64) -> f64 {
        if self.squared {
            acc
        } else {
            self.metric.finish(acc)
        }
    }

    /// Combines per-axis absolute differences into a key.
    #[inline]
    fn combine(self, deltas: impl Iterator<Item = f64>) -> f64 {
        self.finish_acc(deltas.fold(0.0, |acc, d| self.metric.accumulate(acc, d)))
    }

    /// True if a non-negative single-axis gap (in coordinate units) already
    /// exceeds the bound `key`. Lets the plane sweep of §2.2.2 compare axis
    /// gaps against key-domain bounds without leaving the key domain: a
    /// one-axis gap `g` contributes at least `g` (L1/L∞) or `g²` (squared L2)
    /// to any key involving it.
    #[must_use]
    pub fn axis_gap_exceeds(self, gap: f64, key: f64) -> bool {
        if self.squared {
            gap * gap > key
        } else {
            gap > key
        }
    }

    /// Point distance in the key domain.
    #[must_use]
    pub fn distance<const D: usize>(self, p: &Point<D>, q: &Point<D>) -> f64 {
        self.combine(
            p.coords()
                .iter()
                .zip(q.coords())
                .map(|(a, b)| (a - b).abs()),
        )
    }

    /// MINDIST key between a point and a rectangle.
    #[must_use]
    pub fn mindist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| axis_gap(p.coord(a), p.coord(a), r.lo()[a], r.hi()[a])))
    }

    /// MINDIST key between two rectangles.
    #[must_use]
    pub fn mindist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| axis_gap(r.lo()[a], r.hi()[a], s.lo()[a], s.hi()[a])))
    }

    /// MAXDIST key between a point and a rectangle.
    #[must_use]
    pub fn maxdist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| {
            let c = p.coord(a);
            (c - r.lo()[a]).abs().max((c - r.hi()[a]).abs())
        }))
    }

    /// MAXDIST key between two rectangles.
    #[must_use]
    pub fn maxdist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        self.combine((0..D).map(|a| {
            let d1 = (r.hi()[a] - s.lo()[a]).abs();
            let d2 = (s.hi()[a] - r.lo()[a]).abs();
            d1.max(d2)
        }))
    }

    /// MINMAXDIST key between a point and a minimal bounding rectangle.
    ///
    /// The minimum over candidate axes commutes with the monotone map, so
    /// this is exactly `to_key(metric.minmaxdist_point_rect(..))` up to the
    /// deferred finish: `min_k sqrt(acc_k) = sqrt(min_k acc_k)`.
    #[must_use]
    pub fn minmaxdist_point_rect<const D: usize>(self, p: &Point<D>, r: &Rect<D>) -> f64 {
        if r.is_empty() {
            return f64::INFINITY;
        }
        let near = |a: usize| {
            let c = p.coord(a);
            if c <= 0.5 * (r.lo()[a] + r.hi()[a]) {
                (c - r.lo()[a]).abs()
            } else {
                (c - r.hi()[a]).abs()
            }
        };
        let far = |a: usize| {
            let c = p.coord(a);
            (c - r.lo()[a]).abs().max((c - r.hi()[a]).abs())
        };
        let mut best = f64::INFINITY;
        for k in 0..D {
            let acc = (0..D).fold(0.0, |acc, a| {
                self.metric
                    .accumulate(acc, if a == k { near(a) } else { far(a) })
            });
            best = best.min(self.finish_acc(acc));
        }
        best
    }

    /// MINMAXDIST key between two minimal bounding rectangles (the face-pair
    /// minimax of §2.2.3, in the key domain).
    #[must_use]
    pub fn minmaxdist_rect_rect<const D: usize>(self, r: &Rect<D>, s: &Rect<D>) -> f64 {
        if r.is_empty() || s.is_empty() {
            return f64::INFINITY;
        }
        if r.margin() == 0.0 {
            return self.minmaxdist_point_rect(&r.center(), s);
        }
        if s.margin() == 0.0 {
            return self.minmaxdist_point_rect(&s.center(), r);
        }
        let faces_r = r.faces();
        let faces_s = s.faces();
        let mut best = f64::INFINITY;
        for fr in &faces_r {
            let cr = fr.corners();
            for fs in &faces_s {
                let cs = fs.corners();
                let mut face_max: f64 = 0.0;
                for p in &cr {
                    for q in &cs {
                        face_max = face_max.max(self.distance(p, q));
                    }
                }
                best = best.min(face_max);
            }
        }
        best
    }
}

/// Distance along one axis between two intervals (zero if they overlap).
#[inline]
pub(crate) fn axis_gap(alo: f64, ahi: f64, blo: f64, bhi: f64) -> f64 {
    if ahi < blo {
        blo - ahi
    } else if bhi < alo {
        alo - bhi
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chessboard];

    #[test]
    fn point_distances() {
        let p = Point::xy(0.0, 0.0);
        let q = Point::xy(3.0, 4.0);
        assert!(approx_eq(Metric::Euclidean.distance(&p, &q), 5.0));
        assert!(approx_eq(Metric::Manhattan.distance(&p, &q), 7.0));
        assert!(approx_eq(Metric::Chessboard.distance(&p, &q), 4.0));
    }

    #[test]
    fn mindist_point_rect_inside_is_zero() {
        let r = Rect::new([0.0, 0.0], [10.0, 10.0]);
        let p = Point::xy(5.0, 5.0);
        for m in METRICS {
            assert_eq!(m.mindist_point_rect(&p, &r), 0.0);
        }
    }

    #[test]
    fn mindist_point_rect_outside() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let p = Point::xy(4.0, 5.0);
        assert!(approx_eq(Metric::Euclidean.mindist_point_rect(&p, &r), 5.0));
        assert!(approx_eq(Metric::Manhattan.mindist_point_rect(&p, &r), 7.0));
        assert!(approx_eq(
            Metric::Chessboard.mindist_point_rect(&p, &r),
            4.0
        ));
    }

    #[test]
    fn mindist_rect_rect_overlapping_is_zero() {
        let a = Rect::new([0.0, 0.0], [2.0, 2.0]);
        let b = Rect::new([1.0, 1.0], [3.0, 3.0]);
        for m in METRICS {
            assert_eq!(m.mindist_rect_rect(&a, &b), 0.0);
        }
    }

    #[test]
    fn mindist_rect_rect_disjoint() {
        let a = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let b = Rect::new([4.0, 5.0], [6.0, 7.0]);
        assert!(approx_eq(Metric::Euclidean.mindist_rect_rect(&a, &b), 5.0));
        assert!(approx_eq(Metric::Manhattan.mindist_rect_rect(&a, &b), 7.0));
        assert!(approx_eq(Metric::Chessboard.mindist_rect_rect(&a, &b), 4.0));
    }

    #[test]
    fn maxdist_point_rect_is_far_corner() {
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let p = Point::xy(-1.0, -1.0);
        assert!(approx_eq(
            Metric::Euclidean.maxdist_point_rect(&p, &r),
            8.0_f64.sqrt()
        ));
        assert!(approx_eq(Metric::Manhattan.maxdist_point_rect(&p, &r), 4.0));
        assert!(approx_eq(
            Metric::Chessboard.maxdist_point_rect(&p, &r),
            2.0
        ));
    }

    #[test]
    fn minmaxdist_point_rect_known_value() {
        // Unit square, query point at (-1, 0.5). Nearest face on x is x=0
        // (near dist 1); on y the farther coordinate is |0.5-0|=0.5 either
        // way. Candidates (Euclidean):
        //   k=x: near_x=1,   far_y=0.5 -> sqrt(1.25)
        //   k=y: near_y=0.5, far_x=2   -> sqrt(4.25)
        // min = sqrt(1.25).
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let p = Point::xy(-1.0, 0.5);
        assert!(approx_eq(
            Metric::Euclidean.minmaxdist_point_rect(&p, &r),
            1.25_f64.sqrt()
        ));
    }

    #[test]
    fn minmaxdist_degenerate_rect_equals_distance() {
        let q = Point::xy(3.0, 4.0);
        let r = q.to_rect();
        let p = Point::xy(0.0, 0.0);
        for m in METRICS {
            assert!(approx_eq(
                m.minmaxdist_point_rect(&p, &r),
                m.distance(&p, &q)
            ));
            assert!(approx_eq(
                m.minmaxdist_rect_rect(&p.to_rect(), &r),
                m.distance(&p, &q)
            ));
        }
    }

    #[test]
    fn empty_rect_distances_are_infinite() {
        let e = Rect::<2>::empty();
        let r = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let p = Point::xy(0.0, 0.0);
        for m in METRICS {
            assert_eq!(m.mindist_point_rect(&p, &e), f64::INFINITY);
            assert_eq!(m.mindist_rect_rect(&r, &e), f64::INFINITY);
            assert_eq!(m.maxdist_point_rect(&p, &e), f64::INFINITY);
            assert_eq!(m.maxdist_rect_rect(&e, &r), f64::INFINITY);
            assert_eq!(m.minmaxdist_point_rect(&p, &e), f64::INFINITY);
            assert_eq!(m.minmaxdist_rect_rect(&e, &r), f64::INFINITY);
        }
    }

    fn arb_point() -> impl Strategy<Value = Point<2>> {
        (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::xy(x, y))
    }

    fn arb_rect() -> impl Strategy<Value = Rect<2>> {
        (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(&a, &b))
    }

    fn arb_metric() -> impl Strategy<Value = Metric> {
        prop::sample::select(METRICS.to_vec())
    }

    proptest! {
        /// Triangle inequality for the point metric.
        #[test]
        fn triangle_inequality(m in arb_metric(), a in arb_point(), b in arb_point(), c in arb_point()) {
            let d_ac = m.distance(&a, &c);
            let d_ab = m.distance(&a, &b);
            let d_bc = m.distance(&b, &c);
            prop_assert!(d_ac <= d_ab + d_bc + 1e-9);
        }

        /// Symmetry and identity of the point metric.
        #[test]
        fn metric_axioms(m in arb_metric(), a in arb_point(), b in arb_point()) {
            prop_assert!(approx_eq(m.distance(&a, &b), m.distance(&b, &a)));
            prop_assert_eq!(m.distance(&a, &a), 0.0);
            prop_assert!(m.distance(&a, &b) >= 0.0);
        }

        /// MINDIST is a lower bound over contained points (consistency, §2.2).
        #[test]
        fn mindist_lower_bounds_contained_points(
            m in arb_metric(), r in arb_rect(), s in arb_rect(),
            t in 0.0..=1.0f64, u in 0.0..=1.0f64, v in 0.0..=1.0f64, w in 0.0..=1.0f64,
        ) {
            let p = Point::xy(
                r.lo()[0] + t * r.extent(0),
                r.lo()[1] + u * r.extent(1),
            );
            let q = Point::xy(
                s.lo()[0] + v * s.extent(0),
                s.lo()[1] + w * s.extent(1),
            );
            let d = m.distance(&p, &q);
            prop_assert!(m.mindist_rect_rect(&r, &s) <= d + 1e-9);
            prop_assert!(m.mindist_point_rect(&p, &s) <= d + 1e-9);
            prop_assert!(d <= m.maxdist_rect_rect(&r, &s) + 1e-9);
            prop_assert!(d <= m.maxdist_point_rect(&p, &s) + 1e-9);
        }

        /// The bound sandwich: MINDIST <= MINMAXDIST <= MAXDIST.
        #[test]
        fn bound_sandwich(m in arb_metric(), p in arb_point(), r in arb_rect(), s in arb_rect()) {
            let lo = m.mindist_point_rect(&p, &r);
            let mid = m.minmaxdist_point_rect(&p, &r);
            let hi = m.maxdist_point_rect(&p, &r);
            prop_assert!(lo <= mid + 1e-9, "point/rect: {lo} > {mid}");
            prop_assert!(mid <= hi + 1e-9, "point/rect: {mid} > {hi}");

            let lo = m.mindist_rect_rect(&r, &s);
            let mid = m.minmaxdist_rect_rect(&r, &s);
            let hi = m.maxdist_rect_rect(&r, &s);
            prop_assert!(lo <= mid + 1e-9, "rect/rect: {lo} > {mid}");
            prop_assert!(mid <= hi + 1e-9, "rect/rect: {mid} > {hi}");
        }

        /// Shrinking one rectangle (a child region) never decreases MINDIST —
        /// the monotonicity the priority queue relies on.
        #[test]
        fn mindist_monotone_under_shrinking(
            m in arb_metric(), r in arb_rect(), s in arb_rect(),
            t in 0.0..=1.0f64, u in 0.0..=1.0f64,
        ) {
            // Build a sub-rectangle of r.
            let lo = [
                (0.5 * t).mul_add(r.extent(0), r.lo()[0]),
                (0.5 * u).mul_add(r.extent(1), r.lo()[1]),
            ];
            let hi = [
                (-0.25 * t).mul_add(r.extent(0), r.hi()[0]),
                (-0.25 * u).mul_add(r.extent(1), r.hi()[1]),
            ];
            let sub = Rect::new(lo, hi);
            prop_assert!(r.contains_rect(&sub));
            prop_assert!(m.mindist_rect_rect(&sub, &s) + 1e-9 >= m.mindist_rect_rect(&r, &s));
            prop_assert!(m.maxdist_rect_rect(&sub, &s) <= m.maxdist_rect_rect(&r, &s) + 1e-9);
        }

        /// MAXDIST point/rect equals the max over corner distances.
        #[test]
        fn maxdist_point_rect_matches_corners(m in arb_metric(), p in arb_point(), r in arb_rect()) {
            let corner_max = r
                .corners()
                .iter()
                .map(|c| m.distance(&p, c))
                .fold(0.0f64, f64::max);
            prop_assert!(approx_eq(m.maxdist_point_rect(&p, &r), corner_max));
        }

        /// MINMAXDIST rect/rect is symmetric (the face-pair formula is), and
        /// the degenerate fast path agrees with the point/rect form.
        #[test]
        fn minmaxdist_rect_rect_symmetric(m in arb_metric(), p in arb_point(), r in arb_rect(), s in arb_rect()) {
            prop_assert!(approx_eq(
                m.minmaxdist_rect_rect(&r, &s),
                m.minmaxdist_rect_rect(&s, &r)
            ));
            // Degenerate first argument hits the fast path; the swapped call
            // exercises the degenerate-second-argument path.
            let pr = p.to_rect();
            let a = m.minmaxdist_rect_rect(&pr, &r);
            let b = m.minmaxdist_rect_rect(&r, &pr);
            prop_assert!(approx_eq(a, m.minmaxdist_point_rect(&p, &r)));
            prop_assert!(approx_eq(a, b));
        }

        /// Key-domain bounds reproduce the scalar bounds bit for bit after
        /// the deferred finish, in both the squared and the plain domain.
        #[test]
        fn key_space_matches_scalar_bounds(m in arb_metric(), p in arb_point(), r in arb_rect(), s in arb_rect()) {
            for ks in [KeySpace::squared(m), KeySpace::plain(m)] {
                prop_assert_eq!(ks.to_distance(ks.distance(&p, &s.center())), m.distance(&p, &s.center()));
                prop_assert_eq!(ks.to_distance(ks.mindist_point_rect(&p, &r)), m.mindist_point_rect(&p, &r));
                prop_assert_eq!(ks.to_distance(ks.mindist_rect_rect(&r, &s)), m.mindist_rect_rect(&r, &s));
                prop_assert_eq!(ks.to_distance(ks.maxdist_point_rect(&p, &r)), m.maxdist_point_rect(&p, &r));
                prop_assert_eq!(ks.to_distance(ks.maxdist_rect_rect(&r, &s)), m.maxdist_rect_rect(&r, &s));
                prop_assert_eq!(
                    ks.to_distance(ks.minmaxdist_point_rect(&p, &r)),
                    m.minmaxdist_point_rect(&p, &r)
                );
                prop_assert_eq!(
                    ks.to_distance(ks.minmaxdist_rect_rect(&r, &s)),
                    m.minmaxdist_rect_rect(&r, &s)
                );
            }
        }

        /// The key map is monotone: ordering of keys equals ordering of
        /// distances, so queues keyed in either domain pop identically.
        #[test]
        fn key_space_preserves_ordering(m in arb_metric(), r in arb_rect(), s in arb_rect(), t in arb_rect()) {
            let ks = KeySpace::squared(m);
            let (d1, d2) = (m.mindist_rect_rect(&r, &s), m.mindist_rect_rect(&r, &t));
            let (k1, k2) = (ks.mindist_rect_rect(&r, &s), ks.mindist_rect_rect(&r, &t));
            // Strict distance order forces strict key order; key order can
            // only collapse to equality after the rounding of the final sqrt.
            // (All values are finite and non-negative, so >= is the clean
            // negation of <.)
            prop_assert!(d1 >= d2 || k1 < k2);
            prop_assert!(k1 >= k2 || d1 <= d2);
        }

        /// `axis_gap_exceeds(g, key)` agrees with comparing the gap against
        /// the distance the key encodes.
        #[test]
        fn axis_gap_exceeds_matches_distance_compare(
            m in arb_metric(), gap in 0.0..50.0f64, d in 0.0..50.0f64,
        ) {
            let ks = KeySpace::squared(m);
            prop_assert_eq!(ks.axis_gap_exceeds(gap, ks.to_key(d)), gap > d);
        }

        /// MINMAXDIST point/rect agrees with a brute-force evaluation of the
        /// face formula.
        #[test]
        fn minmaxdist_point_rect_matches_bruteforce(m in arb_metric(), p in arb_point(), r in arb_rect()) {
            let brute = r
                .faces()
                .iter()
                .map(|f| {
                    f.corners()
                        .iter()
                        .map(|c| m.distance(&p, c))
                        .fold(0.0f64, f64::max)
                })
                .fold(f64::INFINITY, f64::min);
            prop_assert!(approx_eq(m.minmaxdist_point_rect(&p, &r), brute));
        }
    }
}
