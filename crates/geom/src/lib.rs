//! Geometry primitives and distance functions for incremental distance joins.
//!
//! This crate provides the spatial vocabulary shared by every other crate in
//! the workspace:
//!
//! * [`Point`] and [`Rect`] in a const-generic dimension `D`,
//! * the [`Metric`] enum (Euclidean, Manhattan, Chessboard) together with the
//!   lower- and upper-bound distance functions the join algorithms need
//!   (MINDIST, MAXDIST and the MINMAXDIST bound of Roussopoulos et al.),
//! * the [`SpatialObject`] trait with ready-made [`Point`] and
//!   [`Segment`] implementations.
//!
//! All distance functions are *consistent* in the sense of Hjaltason & Samet
//! (SIGMOD 1998, §2.2): the distance of a pair is never smaller than the
//! distance of any pair it was generated from. The property tests in this
//! crate check exactly that.

pub mod kernels;
mod metric;
mod object;
mod ordf64;
mod point;
mod rect;
mod segment;

pub use kernels::{SoaRects, LANE_WIDTH};
pub use metric::{KeySpace, Metric};
pub use object::SpatialObject;
pub use ordf64::OrdF64;
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;

/// Convenience alias for the two-dimensional points used in the paper's
/// evaluation.
pub type Point2 = Point<2>;
/// Convenience alias for two-dimensional rectangles.
pub type Rect2 = Rect<2>;

/// Relative/absolute tolerance used by the test suites when comparing
/// distances computed along different code paths.
pub const EPSILON: f64 = 1e-9;

/// Compares two `f64` values for approximate equality with a mixed
/// absolute/relative tolerance. Exposed so downstream test suites agree on
/// one definition.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    diff <= EPSILON || diff <= EPSILON * a.abs().max(b.abs())
}
