//! The spatial-object abstraction.

use crate::{Metric, Point, Rect};

/// A spatial data object that can be indexed by the R-tree and joined by the
/// incremental distance join.
///
/// The algorithms only ever interact with objects through a minimal bounding
/// rectangle and an object-to-object distance, which is what makes them work
/// "for data objects of arbitrary type and dimension" (paper §2.2). The
/// consistency requirement is that
/// `metric.mindist_rect_rect(a.mbr(), b.mbr()) <= a.min_distance(b, metric)`;
/// the property tests in this workspace verify it for the provided types.
pub trait SpatialObject<const D: usize>: Clone {
    /// Minimal bounding rectangle of the object.
    fn mbr(&self) -> Rect<D>;

    /// Minimum distance between the geometries of two objects under the
    /// given metric.
    fn min_distance(&self, other: &Self, metric: Metric) -> f64;
}

impl<const D: usize> SpatialObject<D> for Point<D> {
    fn mbr(&self) -> Rect<D> {
        self.to_rect()
    }

    fn min_distance(&self, other: &Self, metric: Metric) -> f64 {
        metric.distance(self, other)
    }
}

impl<const D: usize> SpatialObject<D> for Rect<D> {
    fn mbr(&self) -> Rect<D> {
        *self
    }

    fn min_distance(&self, other: &Self, metric: Metric) -> f64 {
        metric.mindist_rect_rect(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_object_consistency() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(3.0, 4.0);
        let m = Metric::Euclidean;
        let via_mbr = m.mindist_rect_rect(&a.mbr(), &b.mbr());
        assert_eq!(via_mbr, a.min_distance(&b, m));
    }

    #[test]
    fn rect_object_distance() {
        let a = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let b = Rect::new([4.0, 0.0], [5.0, 1.0]);
        assert_eq!(a.min_distance(&b, Metric::Euclidean), 3.0);
        assert_eq!(a.mbr(), a);
    }
}
