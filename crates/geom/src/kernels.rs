//! Batched one-rect-vs-N distance-bound kernels over a struct-of-arrays
//! rectangle view.
//!
//! Node expansion is the join's CPU hot path: one popped pair evaluates
//! MINDIST (and often MAXDIST/MINMAXDIST) against *every* child entry of a
//! node, or against a plane-sweep window of them. Walking array-of-structs
//! entries one at a time keeps each bound evaluation scalar; this module
//! instead decodes a node's rectangles once into per-axis `lo`/`hi` columns
//! ([`SoaRects`]) and evaluates each bound as `D` column passes that the
//! compiler can autovectorize:
//!
//! ```text
//!   SoaRects<2>            axis 0              axis 1
//!     lo[0]: [l0 l0 l0 ...]   \  pass 1: out[i] = acc(0, gap0(i))
//!     hi[0]: [h0 h0 h0 ...]   /
//!     lo[1]: [l1 l1 l1 ...]   \  pass 2: out[i] = acc(out[i], gap1(i))
//!     hi[1]: [h1 h1 h1 ...]   /
//! ```
//!
//! The axis-major accumulation order (axis `0`, then `1`, …) is exactly the
//! fold order of the scalar bounds in [`Metric`](crate::Metric), so in the
//! squared [`KeySpace`] the batched keys match the scalar accumulators bit
//! for bit and a deferred `sqrt` reproduces the scalar distance exactly.
//!
//! All kernels write keys in the caller-chosen [`KeySpace`]; none of them
//! performs a `sqrt`.

use std::ops::Range;

use crate::metric::axis_gap;
use crate::{KeySpace, Point, Rect};

/// A struct-of-arrays batch of non-empty rectangles: one `lo` and one `hi`
/// column per axis, reusable across node expansions (`clear` keeps the
/// allocations).
#[derive(Clone, Debug)]
pub struct SoaRects<const D: usize> {
    len: usize,
    lo: [Vec<f64>; D],
    hi: [Vec<f64>; D],
}

impl<const D: usize> Default for SoaRects<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> SoaRects<D> {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            len: 0,
            lo: std::array::from_fn(|_| Vec::new()),
            hi: std::array::from_fn(|_| Vec::new()),
        }
    }

    /// Number of rectangles in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the batch holds no rectangles.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Empties the batch, keeping the column allocations for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        for a in 0..D {
            self.lo[a].clear();
            self.hi[a].clear();
        }
    }

    /// Appends one rectangle. Rectangles must be non-empty; node entry
    /// regions and object bounding rectangles always are.
    pub fn push(&mut self, r: &Rect<D>) {
        debug_assert!(!r.is_empty(), "SoaRects holds non-empty rectangles only");
        for a in 0..D {
            self.lo[a].push(r.lo()[a]);
            self.hi[a].push(r.hi()[a]);
        }
        self.len += 1;
    }

    /// The `lo` column of one axis (used by the plane sweep, which keeps the
    /// batch sorted by `lo[0]` and binary-searches its window bounds here).
    #[must_use]
    pub fn lo_axis(&self, axis: usize) -> &[f64] {
        &self.lo[axis]
    }

    /// Reconstructs the rectangle at `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> Rect<D> {
        Rect::new(
            std::array::from_fn(|a| self.lo[a][i]),
            std::array::from_fn(|a| self.hi[a][i]),
        )
    }

    /// MINDIST keys between `q` and the rectangles in `range`, appended to
    /// `out` (one key per rectangle, in batch order).
    pub fn mindist_keys(&self, ks: KeySpace, q: &Rect<D>, range: Range<usize>, out: &mut Vec<f64>) {
        if q.is_empty() {
            out.resize(out.len() + range.len(), f64::INFINITY);
            return;
        }
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let (qlo, qhi) = (q.lo()[a], q.hi()[a]);
            accumulate_axis(ks, acc, lo, hi, |l, h| axis_gap(l, h, qlo, qhi));
        }
        finish_axis(ks, acc);
    }

    /// [`SoaRects::mindist_keys`] with the column pass unrolled into
    /// explicit [`LANE_WIDTH`]-wide f64 lanes (the `std::simd` shape on
    /// stable Rust). Exact-width chunks carry no per-element bounds checks
    /// or iterator state, so the pass lowers to straight-line vector code;
    /// each element still performs the same two-rounding accumulate as the
    /// scalar kernel, so results are bit-identical.
    pub fn mindist_keys_lanes(
        &self,
        ks: KeySpace,
        q: &Rect<D>,
        range: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        if q.is_empty() {
            out.resize(out.len() + range.len(), f64::INFINITY);
            return;
        }
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let (qlo, qhi) = (q.lo()[a], q.hi()[a]);
            accumulate_axis_lanes(ks, acc, lo, hi, |l, h| axis_gap(l, h, qlo, qhi));
        }
        finish_axis(ks, acc);
    }

    /// MAXDIST keys between `q` and the rectangles in `range`, appended to
    /// `out`.
    pub fn maxdist_keys(&self, ks: KeySpace, q: &Rect<D>, range: Range<usize>, out: &mut Vec<f64>) {
        if q.is_empty() {
            out.resize(out.len() + range.len(), f64::INFINITY);
            return;
        }
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let (qlo, qhi) = (q.lo()[a], q.hi()[a]);
            accumulate_axis(ks, acc, lo, hi, |l, h| (h - qlo).abs().max((qhi - l).abs()));
        }
        finish_axis(ks, acc);
    }

    /// [`SoaRects::maxdist_keys`] over explicit fixed-width lanes; see
    /// [`SoaRects::mindist_keys_lanes`] for the contract (bit-identical to
    /// the scalar kernel, element for element).
    pub fn maxdist_keys_lanes(
        &self,
        ks: KeySpace,
        q: &Rect<D>,
        range: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        if q.is_empty() {
            out.resize(out.len() + range.len(), f64::INFINITY);
            return;
        }
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let (qlo, qhi) = (q.lo()[a], q.hi()[a]);
            accumulate_axis_lanes(ks, acc, lo, hi, |l, h| (h - qlo).abs().max((qhi - l).abs()));
        }
        finish_axis(ks, acc);
    }

    /// MINMAXDIST keys between minimal bounding rectangle `q` and the
    /// rectangles in `range`, appended to `out`. The per-element minimum over
    /// candidate axes keeps a running best, so later candidates exit early
    /// once they cannot improve it; the min commutes with the monotone key
    /// map, so results still match the scalar bound exactly.
    pub fn minmaxdist_keys(
        &self,
        ks: KeySpace,
        q: &Rect<D>,
        range: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        for i in range {
            out.push(ks.minmaxdist_rect_rect(q, &self.get(i)));
        }
    }

    /// MINDIST keys between point `p` and the rectangles in `range`,
    /// appended to `out`.
    pub fn point_mindist_keys(
        &self,
        ks: KeySpace,
        p: &Point<D>,
        range: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let c = p.coord(a);
            accumulate_axis(ks, acc, lo, hi, |l, h| axis_gap(c, c, l, h));
        }
        finish_axis(ks, acc);
    }

    /// For each rectangle `r_i` in `range`: the MINDIST key between `focus`
    /// and `r_i ∩ clip`, or `+inf` when the intersection is empty. This is
    /// the ordered-intersection join's key (see `sdj-core`'s `intersect`
    /// module) computed without materialising the intersection rectangle.
    pub fn focus_intersection_keys(
        &self,
        ks: KeySpace,
        clip: &Rect<D>,
        focus: &Point<D>,
        range: Range<usize>,
        out: &mut Vec<f64>,
    ) {
        if clip.is_empty() {
            out.resize(out.len() + range.len(), f64::INFINITY);
            return;
        }
        let base = out.len();
        out.resize(out.len() + range.len(), 0.0);
        let acc = &mut out[base..];
        for a in 0..D {
            let lo = &self.lo[a][range.clone()];
            let hi = &self.hi[a][range.clone()];
            let (clo, chi) = (clip.lo()[a], clip.hi()[a]);
            let c = focus.coord(a);
            for (v, (&l, &h)) in acc.iter_mut().zip(lo.iter().zip(hi)) {
                let (ilo, ihi) = (l.max(clo), h.min(chi));
                if ilo > ihi {
                    *v = f64::INFINITY;
                } else {
                    *v = ks.metric().accumulate(*v, axis_gap(c, c, ilo, ihi));
                }
            }
        }
        finish_axis(ks, acc);
    }
}

/// Elements per lane group in the `*_keys_lanes` kernels: 4 × f64 matches a
/// 256-bit vector register, the widest unit commonly available without
/// nightly `std::simd`.
pub const LANE_WIDTH: usize = 4;

/// [`accumulate_axis`] restructured into exact [`LANE_WIDTH`]-element
/// chunks: the lane body indexes fixed-size arrays (no slice bounds checks,
/// no iterator state), which is the explicit-SIMD shape stable Rust can
/// express. The per-element arithmetic is identical to the scalar pass, so
/// both produce the same bits; only the loop structure differs.
#[inline]
fn accumulate_axis_lanes(
    ks: KeySpace,
    acc: &mut [f64],
    lo: &[f64],
    hi: &[f64],
    gap: impl Fn(f64, f64) -> f64,
) {
    let m = ks.metric();
    let (acc_lanes, acc_tail) = acc.as_chunks_mut::<LANE_WIDTH>();
    let (lo_lanes, lo_tail) = lo.as_chunks::<LANE_WIDTH>();
    let (hi_lanes, hi_tail) = hi.as_chunks::<LANE_WIDTH>();
    for (v, (l, h)) in acc_lanes.iter_mut().zip(lo_lanes.iter().zip(hi_lanes)) {
        for j in 0..LANE_WIDTH {
            v[j] = m.accumulate(v[j], gap(l[j], h[j]));
        }
    }
    for (v, (&l, &h)) in acc_tail.iter_mut().zip(lo_tail.iter().zip(hi_tail)) {
        *v = m.accumulate(*v, gap(l, h));
    }
}

/// One column pass: folds `gap(lo[i], hi[i])` into `acc[i]` under the
/// metric's accumulator. Kept free of branches on the element index so the
/// compiler can vectorize the loop.
#[inline]
fn accumulate_axis(
    ks: KeySpace,
    acc: &mut [f64],
    lo: &[f64],
    hi: &[f64],
    gap: impl Fn(f64, f64) -> f64,
) {
    let m = ks.metric();
    for (v, (&l, &h)) in acc.iter_mut().zip(lo.iter().zip(hi)) {
        *v = m.accumulate(*v, gap(l, h));
    }
}

/// Applies the key-domain finish to a whole column (identity in the squared
/// domain and for L1/L∞ — only the plain Euclidean A/B path pays sqrts here).
#[inline]
fn finish_axis(ks: KeySpace, acc: &mut [f64]) {
    for v in acc {
        *v = ks.finish_acc(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Chessboard];

    fn batch() -> (SoaRects<2>, Vec<Rect<2>>) {
        let rects = vec![
            Rect::new([0.0, 0.0], [1.0, 1.0]),
            Rect::new([3.0, 4.0], [5.0, 6.0]),
            Rect::new([-2.0, -1.5], [-1.0, 0.5]),
            Rect::new([0.25, 0.25], [0.25, 0.25]),
        ];
        let mut soa = SoaRects::new();
        for r in &rects {
            soa.push(r);
        }
        (soa, rects)
    }

    #[test]
    fn batched_bounds_match_scalar_exactly() {
        let (soa, rects) = batch();
        let q = Rect::new([0.5, 0.5], [2.0, 2.5]);
        let p = Point::xy(1.5, -0.5);
        for m in METRICS {
            for ks in [KeySpace::squared(m), KeySpace::plain(m)] {
                let mut min = Vec::new();
                let mut max = Vec::new();
                let mut mm = Vec::new();
                let mut pmin = Vec::new();
                soa.mindist_keys(ks, &q, 0..soa.len(), &mut min);
                soa.maxdist_keys(ks, &q, 0..soa.len(), &mut max);
                soa.minmaxdist_keys(ks, &q, 0..soa.len(), &mut mm);
                soa.point_mindist_keys(ks, &p, 0..soa.len(), &mut pmin);
                for (i, r) in rects.iter().enumerate() {
                    assert_eq!(ks.to_distance(min[i]), m.mindist_rect_rect(&q, r));
                    assert_eq!(ks.to_distance(max[i]), m.maxdist_rect_rect(&q, r));
                    assert_eq!(ks.to_distance(mm[i]), m.minmaxdist_rect_rect(&q, r));
                    assert_eq!(ks.to_distance(pmin[i]), m.mindist_point_rect(&p, r));
                }
            }
        }
    }

    #[test]
    fn lane_kernels_match_column_kernels_bit_for_bit() {
        // Sizes straddling the lane width exercise both the exact-chunk body
        // and the scalar tail (0..=9 covers empty, sub-lane, exact multiples
        // and ragged tails).
        let q = Rect::new([0.5, 0.5], [2.0, 2.5]);
        for n in 0..=9usize {
            let mut soa = SoaRects::<2>::new();
            for i in 0..n {
                let x = (i as f64).mul_add(0.7, -1.3);
                let y = (i as f64).sin();
                soa.push(&Rect::new([x, y], [x + 0.4, y + 0.9]));
            }
            for m in METRICS {
                for ks in [KeySpace::squared(m), KeySpace::plain(m)] {
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    soa.mindist_keys(ks, &q, 0..n, &mut a);
                    soa.mindist_keys_lanes(ks, &q, 0..n, &mut b);
                    assert_eq!(
                        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    );
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    soa.maxdist_keys(ks, &q, 0..n, &mut a);
                    soa.maxdist_keys_lanes(ks, &q, 0..n, &mut b);
                    assert_eq!(
                        a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    #[test]
    fn lane_kernels_handle_empty_query() {
        let (soa, _) = batch();
        let ks = KeySpace::squared(Metric::Euclidean);
        let mut out = Vec::new();
        soa.mindist_keys_lanes(ks, &Rect::empty(), 0..soa.len(), &mut out);
        assert!(out.iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn focus_intersection_matches_materialized_intersection() {
        let (soa, rects) = batch();
        let clip = Rect::new([-0.5, 0.0], [4.0, 5.0]);
        let focus = Point::xy(0.0, 3.0);
        for m in METRICS {
            let ks = KeySpace::squared(m);
            let mut keys = Vec::new();
            soa.focus_intersection_keys(ks, &clip, &focus, 0..soa.len(), &mut keys);
            for (i, r) in rects.iter().enumerate() {
                let int = r.intersection(&clip);
                let want = m.mindist_point_rect(&focus, &int);
                assert_eq!(ks.to_distance(keys[i]), want, "rect {i}");
            }
        }
    }

    #[test]
    fn subrange_keys_align_with_range_start() {
        let (soa, rects) = batch();
        let q = Rect::new([10.0, 10.0], [11.0, 11.0]);
        let ks = KeySpace::squared(Metric::Euclidean);
        let mut keys = Vec::new();
        soa.mindist_keys(ks, &q, 1..3, &mut keys);
        assert_eq!(keys.len(), 2);
        for (j, r) in rects[1..3].iter().enumerate() {
            assert_eq!(
                ks.to_distance(keys[j]),
                Metric::Euclidean.mindist_rect_rect(&q, r)
            );
        }
    }

    #[test]
    fn clear_keeps_capacity_and_appends_after_reuse() {
        let (mut soa, _) = batch();
        soa.clear();
        assert!(soa.is_empty());
        soa.push(&Rect::new([1.0, 1.0], [2.0, 2.0]));
        assert_eq!(soa.len(), 1);
        assert_eq!(soa.get(0), Rect::new([1.0, 1.0], [2.0, 2.0]));
        let mut out = vec![f64::NAN];
        let ks = KeySpace::plain(Metric::Manhattan);
        soa.mindist_keys(ks, &Rect::new([0.0, 0.0], [0.0, 0.0]), 0..1, &mut out);
        // Appends after existing content rather than clobbering it.
        assert!(out[0].is_nan());
        assert_eq!(out[1], 2.0);
    }
}
