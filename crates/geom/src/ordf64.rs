//! A totally ordered `f64` wrapper for priority-queue keys.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` that is `Ord`, for use as a priority-queue key.
///
/// Distances produced by the metric functions are never NaN (inputs are
/// finite coordinates, bounds may be `+inf`), and the constructor enforces
/// this, so the wrapper can expose the natural total order on the remaining
/// values.
#[derive(Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Positive infinity (the key of pairs involving empty regions).
    pub const INFINITY: OrdF64 = OrdF64(f64::INFINITY);
    /// Zero.
    pub const ZERO: OrdF64 = OrdF64(0.0);

    /// Wraps a non-NaN float.
    ///
    /// # Panics
    /// Panics if `v` is NaN — distance functions never produce NaN, so this
    /// indicates a caller bug.
    #[must_use]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN is not a valid distance key");
        Self(v)
    }

    /// The wrapped value.
    #[inline]
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("OrdF64 is never NaN")
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        Self::new(v)
    }
}

impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering() {
        assert!(OrdF64::new(1.0) < OrdF64::new(2.0));
        assert!(OrdF64::new(-1.0) < OrdF64::ZERO);
        assert!(OrdF64::new(1e308) < OrdF64::INFINITY);
        assert_eq!(OrdF64::new(3.5), OrdF64::new(3.5));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = OrdF64::new(f64::NAN);
    }

    #[test]
    fn sort_stability() {
        let mut v = vec![
            OrdF64::new(3.0),
            OrdF64::new(1.0),
            OrdF64::INFINITY,
            OrdF64::ZERO,
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrdF64::get).collect();
        assert_eq!(raw, vec![0.0, 1.0, 3.0, f64::INFINITY]);
    }
}
