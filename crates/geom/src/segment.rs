//! Two-dimensional line segments: the "objects with extent" that §5 of the
//! paper lists as future work, supported here to demonstrate that the join
//! algorithms are not limited to points.

use crate::{Metric, Point, Rect, SpatialObject};

/// A line segment in the plane.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    a: Point<2>,
    b: Point<2>,
}

impl Segment {
    /// Creates a segment between two endpoints.
    #[must_use]
    pub const fn new(a: Point<2>, b: Point<2>) -> Self {
        Self { a, b }
    }

    /// First endpoint.
    #[must_use]
    pub const fn start(&self) -> Point<2> {
        self.a
    }

    /// Second endpoint.
    #[must_use]
    pub const fn end(&self) -> Point<2> {
        self.b
    }

    /// Euclidean length of the segment.
    #[must_use]
    pub fn length(&self) -> f64 {
        Metric::Euclidean.distance(&self.a, &self.b)
    }

    /// The point of the segment closest (in the Euclidean sense) to `p`.
    #[must_use]
    pub fn closest_point_to(&self, p: &Point<2>) -> Point<2> {
        let dx = self.b.x() - self.a.x();
        let dy = self.b.y() - self.a.y();
        let len2 = dx.mul_add(dx, dy * dy);
        if len2 == 0.0 {
            return self.a;
        }
        let t = (p.x() - self.a.x()).mul_add(dx, (p.y() - self.a.y()) * dy) / len2;
        self.a.lerp(&self.b, t.clamp(0.0, 1.0))
    }

    /// Euclidean distance from a point to the segment.
    #[must_use]
    pub fn distance_to_point(&self, p: &Point<2>) -> f64 {
        Metric::Euclidean.distance(p, &self.closest_point_to(p))
    }

    /// True if the two segments properly intersect or touch.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        let d1 = orient(&other.a, &other.b, &self.a);
        let d2 = orient(&other.a, &other.b, &self.b);
        let d3 = orient(&self.a, &self.b, &other.a);
        let d4 = orient(&self.a, &self.b, &other.b);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(&other.a, &other.b, &self.a))
            || (d2 == 0.0 && on_segment(&other.a, &other.b, &self.b))
            || (d3 == 0.0 && on_segment(&self.a, &self.b, &other.a))
            || (d4 == 0.0 && on_segment(&self.a, &self.b, &other.b))
    }

    /// Euclidean minimum distance between two segments (zero if they
    /// intersect); otherwise attained from an endpoint of one segment to the
    /// other segment.
    #[must_use]
    pub fn distance_to_segment(&self, other: &Self) -> f64 {
        if self.intersects(other) {
            return 0.0;
        }
        self.distance_to_point(&other.a)
            .min(self.distance_to_point(&other.b))
            .min(other.distance_to_point(&self.a))
            .min(other.distance_to_point(&self.b))
    }
}

/// Cross product of `(b - a) x (c - a)`: positive if `c` lies to the left of
/// the directed line `a -> b`.
fn orient(a: &Point<2>, b: &Point<2>, c: &Point<2>) -> f64 {
    (b.x() - a.x()).mul_add(c.y() - a.y(), -((b.y() - a.y()) * (c.x() - a.x())))
}

/// True if `p` (already known collinear with `a`-`b`) lies on the segment.
fn on_segment(a: &Point<2>, b: &Point<2>, p: &Point<2>) -> bool {
    p.x() >= a.x().min(b.x())
        && p.x() <= a.x().max(b.x())
        && p.y() >= a.y().min(b.y())
        && p.y() <= a.y().max(b.y())
}

impl SpatialObject<2> for Segment {
    fn mbr(&self) -> Rect<2> {
        Rect::from_corners(&self.a, &self.b)
    }

    /// Minimum distance between segments. Only the Euclidean metric is
    /// meaningful for extended objects here; other metrics fall back to the
    /// Euclidean geometry, which is still consistent for Euclidean-keyed
    /// trees.
    fn min_distance(&self, other: &Self, _metric: Metric) -> f64 {
        self.distance_to_segment(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::xy(ax, ay), Point::xy(bx, by))
    }

    #[test]
    fn point_to_segment_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(approx_eq(s.distance_to_point(&Point::xy(5.0, 3.0)), 3.0));
        assert!(approx_eq(s.distance_to_point(&Point::xy(-3.0, 4.0)), 5.0));
        assert!(approx_eq(s.distance_to_point(&Point::xy(13.0, 4.0)), 5.0));
        assert_eq!(s.distance_to_point(&Point::xy(7.0, 0.0)), 0.0);
    }

    #[test]
    fn crossing_segments_distance_zero() {
        let a = seg(0.0, 0.0, 2.0, 2.0);
        let b = seg(0.0, 2.0, 2.0, 0.0);
        assert!(a.intersects(&b));
        assert_eq!(a.distance_to_segment(&b), 0.0);
    }

    #[test]
    fn touching_segments_distance_zero() {
        let a = seg(0.0, 0.0, 1.0, 0.0);
        let b = seg(1.0, 0.0, 2.0, 5.0);
        assert!(a.intersects(&b));
        assert_eq!(a.distance_to_segment(&b), 0.0);
    }

    #[test]
    fn parallel_segments_distance() {
        let a = seg(0.0, 0.0, 10.0, 0.0);
        let b = seg(0.0, 4.0, 10.0, 4.0);
        assert!(!a.intersects(&b));
        assert!(approx_eq(a.distance_to_segment(&b), 4.0));
    }

    #[test]
    fn degenerate_segment_is_point() {
        let a = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(a.length(), 0.0);
        assert!(approx_eq(a.distance_to_point(&Point::xy(4.0, 5.0)), 5.0));
        let b = seg(1.0, 5.0, 1.0, 7.0);
        assert!(approx_eq(a.distance_to_segment(&b), 4.0));
    }

    #[test]
    fn mbr_bounds_segment() {
        let s = seg(3.0, -1.0, 0.0, 4.0);
        let m = s.mbr();
        assert_eq!(m, Rect::new([0.0, -1.0], [3.0, 4.0]));
    }

    fn arb_seg() -> impl Strategy<Value = Segment> {
        (
            -50.0..50.0f64,
            -50.0..50.0f64,
            -50.0..50.0f64,
            -50.0..50.0f64,
        )
            .prop_map(|(ax, ay, bx, by)| seg(ax, ay, bx, by))
    }

    proptest! {
        /// Segment distance is symmetric and never below the MBR MINDIST —
        /// the consistency requirement of `SpatialObject`.
        #[test]
        fn segment_distance_consistency(a in arb_seg(), b in arb_seg()) {
            let d = a.distance_to_segment(&b);
            prop_assert!(approx_eq(d, b.distance_to_segment(&a)));
            let lb = Metric::Euclidean.mindist_rect_rect(&a.mbr(), &b.mbr());
            prop_assert!(lb <= d + 1e-9);
        }

        /// The closest point really lies on the segment and is no farther
        /// than either endpoint.
        #[test]
        fn closest_point_on_segment(s in arb_seg(), px in -60.0..60.0f64, py in -60.0..60.0f64) {
            let p = Point::xy(px, py);
            let c = s.closest_point_to(&p);
            // Allow an ulp of lerp rounding when checking containment.
            let m = s.mbr();
            for a in 0..2 {
                prop_assert!(c.coord(a) >= m.lo()[a] - 1e-9);
                prop_assert!(c.coord(a) <= m.hi()[a] + 1e-9);
            }
            let d = Metric::Euclidean.distance(&p, &c);
            prop_assert!(d <= Metric::Euclidean.distance(&p, &s.start()) + 1e-9);
            prop_assert!(d <= Metric::Euclidean.distance(&p, &s.end()) + 1e-9);
        }
    }
}
