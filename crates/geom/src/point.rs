//! Points in `D`-dimensional Euclidean space.

use crate::Rect;

/// A point in `D`-dimensional space with `f64` coordinates.
///
/// `Point` is `Copy` for small `D`; the join algorithms store points inline
/// in R-tree leaf pages exactly as the paper's evaluation does ("the spatial
/// objects were represented directly in the leaves").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    #[must_use]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin (all coordinates zero).
    #[must_use]
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Coordinate along axis `axis`.
    ///
    /// # Panics
    /// Panics if `axis >= D`.
    #[inline]
    #[must_use]
    pub fn coord(&self, axis: usize) -> f64 {
        self.coords[axis]
    }

    /// All coordinates as a slice.
    #[inline]
    #[must_use]
    pub fn coords(&self) -> &[f64; D] {
        &self.coords
    }

    /// Mutable access to the coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64; D] {
        &mut self.coords
    }

    /// The degenerate rectangle `[self, self]`.
    #[must_use]
    pub fn to_rect(self) -> Rect<D> {
        Rect::new(self.coords, self.coords)
    }

    /// Componentwise minimum of two points.
    #[must_use]
    pub fn min_with(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (o, (a, b)) in out.iter_mut().zip(self.coords.iter().zip(&other.coords)) {
            *o = a.min(*b);
        }
        Self { coords: out }
    }

    /// Componentwise maximum of two points.
    #[must_use]
    pub fn max_with(&self, other: &Self) -> Self {
        let mut out = [0.0; D];
        for (o, (a, b)) in out.iter_mut().zip(self.coords.iter().zip(&other.coords)) {
            *o = a.max(*b);
        }
        Self { coords: out }
    }

    /// Linear interpolation `self + t * (other - self)`.
    #[must_use]
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut out = [0.0; D];
        for (o, (a, b)) in out.iter_mut().zip(self.coords.iter().zip(&other.coords)) {
            *o = a + t * (b - a);
        }
        Self { coords: out }
    }

    /// True if every coordinate is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }
}

impl Point<2> {
    /// Shorthand constructor for the common 2-D case.
    #[must_use]
    pub const fn xy(x: f64, y: f64) -> Self {
        Self::new([x, y])
    }

    /// The x coordinate.
    #[inline]
    #[must_use]
    pub fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The y coordinate.
    #[inline]
    #[must_use]
    pub fn y(&self) -> f64 {
        self.coords[1]
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_accessors() {
        let p = Point::xy(3.0, -4.5);
        assert_eq!(p.x(), 3.0);
        assert_eq!(p.y(), -4.5);
        assert_eq!(p.coord(0), 3.0);
        assert_eq!(p.coord(1), -4.5);
    }

    #[test]
    fn to_rect_is_degenerate() {
        let p = Point::new([1.0, 2.0, 3.0]);
        let r = p.to_rect();
        assert_eq!(r.lo(), r.hi());
        assert_eq!(r.lo()[1], 2.0);
        assert_eq!(r.area(), 0.0);
    }

    #[test]
    fn min_max_with() {
        let a = Point::xy(1.0, 5.0);
        let b = Point::xy(2.0, -1.0);
        assert_eq!(a.min_with(&b), Point::xy(1.0, -1.0));
        assert_eq!(a.max_with(&b), Point::xy(2.0, 5.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::xy(1.0, 2.0));
    }

    #[test]
    fn default_is_origin() {
        let p: Point<4> = Point::default();
        assert!(p.coords().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::xy(1.0, 2.0).is_finite());
        assert!(!Point::xy(f64::NAN, 2.0).is_finite());
        assert!(!Point::xy(1.0, f64::INFINITY).is_finite());
    }
}
