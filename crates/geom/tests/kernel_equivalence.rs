//! Batched-kernel ↔ scalar equivalence, property-tested over random
//! rectangle batches for every metric and for D ∈ {2, 3}.
//!
//! The kernels promise the *same axis fold order* as the scalar bound
//! functions, so results should match bit for bit; the assertion allows a
//! 1-ulp slack to state the contract the rest of the system actually relies
//! on (ordering decisions tolerate 1 ulp; see `sdj-core`'s fuzz suites).
//!
//! `ci.sh` runs this file as the kernel-equivalence smoke test.

use proptest::prelude::*;
use sdj_geom::{KeySpace, Metric, Point, Rect, SoaRects};

/// Ulp distance between two non-negative finite floats (∞ handled exactly).
fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0; // covers +inf == +inf
    }
    if !a.is_finite() || !b.is_finite() {
        return u64::MAX;
    }
    a.to_bits().abs_diff(b.to_bits())
}

fn assert_close(got: f64, want: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        ulp_diff(got, want) <= 1,
        "kernel {got:e} vs scalar {want:e} differ by more than 1 ulp"
    );
    Ok(())
}

fn arb_metric() -> impl Strategy<Value = Metric> {
    prop::sample::select(vec![
        Metric::Euclidean,
        Metric::Manhattan,
        Metric::Chessboard,
    ])
}

fn arb_rect<const D: usize>() -> impl Strategy<Value = Rect<D>> {
    prop::collection::vec((-50.0..50.0f64, 0.0..20.0f64), D).prop_map(|axes| {
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for (a, (l, w)) in axes.into_iter().enumerate() {
            lo[a] = l;
            hi[a] = l + w;
        }
        Rect::new(lo, hi)
    })
}

fn arb_point<const D: usize>() -> impl Strategy<Value = Point<D>> {
    prop::collection::vec(-60.0..60.0f64, D).prop_map(|c| {
        let mut coords = [0.0; D];
        coords.copy_from_slice(&c);
        Point::new(coords)
    })
}

fn batch<const D: usize>(rects: &[Rect<D>]) -> SoaRects<D> {
    let mut soa = SoaRects::new();
    for r in rects {
        soa.push(r);
    }
    soa
}

fn check_all<const D: usize>(
    metric: Metric,
    squared: bool,
    rects: &[Rect<D>],
    q: &Rect<D>,
    p: &Point<D>,
) -> Result<(), TestCaseError> {
    let ks = if squared {
        KeySpace::squared(metric)
    } else {
        KeySpace::plain(metric)
    };
    let soa = batch(rects);
    let n = rects.len();
    let mut out = Vec::new();

    soa.mindist_keys(ks, q, 0..n, &mut out);
    for (r, &k) in rects.iter().zip(&out) {
        assert_close(k, ks.mindist_rect_rect(r, q))?;
    }
    out.clear();
    soa.maxdist_keys(ks, q, 0..n, &mut out);
    for (r, &k) in rects.iter().zip(&out) {
        assert_close(k, ks.maxdist_rect_rect(r, q))?;
    }
    out.clear();
    soa.minmaxdist_keys(ks, q, 0..n, &mut out);
    for (r, &k) in rects.iter().zip(&out) {
        assert_close(k, ks.minmaxdist_rect_rect(q, r))?;
    }
    out.clear();
    soa.point_mindist_keys(ks, p, 0..n, &mut out);
    for (r, &k) in rects.iter().zip(&out) {
        assert_close(k, ks.mindist_point_rect(p, r))?;
    }
    out.clear();
    soa.focus_intersection_keys(ks, q, p, 0..n, &mut out);
    for (r, &k) in rects.iter().zip(&out) {
        let common = r.intersection(q);
        let want = if common.is_empty() {
            f64::INFINITY
        } else {
            ks.mindist_point_rect(p, &common)
        };
        assert_close(k, want)?;
    }

    // Sub-range calls agree with the full pass (offset bookkeeping).
    if n >= 2 {
        out.clear();
        soa.mindist_keys(ks, q, 1..n, &mut out);
        for (r, &k) in rects[1..].iter().zip(&out) {
            assert_close(k, ks.mindist_rect_rect(r, q))?;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn kernels_match_scalar_2d(
        metric in arb_metric(),
        squared in any::<bool>(),
        rects in prop::collection::vec(arb_rect::<2>(), 1..40),
        q in arb_rect::<2>(),
        p in arb_point::<2>(),
    ) {
        check_all(metric, squared, &rects, &q, &p)?;
    }

    #[test]
    fn kernels_match_scalar_3d(
        metric in arb_metric(),
        squared in any::<bool>(),
        rects in prop::collection::vec(arb_rect::<3>(), 1..40),
        q in arb_rect::<3>(),
        p in arb_point::<3>(),
    ) {
        check_all(metric, squared, &rects, &q, &p)?;
    }
}
