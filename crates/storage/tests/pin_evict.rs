//! Eviction correctness under pinning, and stats continuity.
//!
//! Three properties of the sharded pool:
//!
//! 1. **Continuity** — with one LRU shard, `PoolStats` is byte-identical to
//!    a straightforward model of the historical single-lock pool on any
//!    read/write trace (EXPERIMENTS.md miss counts stay comparable), and
//!    any shard count preserves the hit+miss access total.
//! 2. **Pin safety** — with capacity C and up to C−1 concurrently held
//!    guards, a pinned page is never evicted (a later demand access is
//!    always a hit) and every guard keeps observing its acquisition-time
//!    snapshot, writes notwithstanding.
//! 3. **No deadlock / no torn reads** — threads hammering guards, updates
//!    and prefetches across shards make progress and only ever observe
//!    fully written pages.

use std::collections::HashMap;

use proptest::prelude::*;
use sdj_storage::{BufferPool, EvictionPolicy, PageId, Pager, PoolConfig, PoolStats};

const PAGE: usize = 16;

/// A trace-replay model of the historical pool: exact LRU over whole pages,
/// counting hits, misses, evictions and write-backs exactly as the old
/// single-mutex implementation did.
#[derive(Default)]
struct ModelLru {
    /// Most-recent-first list of `(page, dirty)`.
    frames: Vec<(u32, bool)>,
    capacity: usize,
    stats: PoolStats,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    fn access(&mut self, page: u32, write: bool) {
        if let Some(pos) = self.frames.iter().position(|&(p, _)| p == page) {
            self.stats.hits += 1;
            let (_, dirty) = self.frames.remove(pos);
            self.frames.insert(0, (page, dirty || write));
        } else {
            self.stats.misses += 1;
            // The real pool takes the pager lock once per fault (read plus
            // any write-back under the same acquisition).
            self.stats.shared_lock_acquisitions += 1;
            if self.frames.len() >= self.capacity {
                let (_, dirty) = self.frames.pop().expect("capacity > 0");
                if dirty {
                    self.stats.writebacks += 1;
                }
                self.stats.evictions += 1;
            }
            self.frames.insert(0, (page, write));
        }
        if !write {
            // The copying `read` API pays one counted memcpy per call.
            self.stats.read_copies += 1;
        }
    }
}

fn pool_over(pages: u32, capacity: usize, config: PoolConfig) -> (BufferPool, Vec<PageId>) {
    let mut pager = Pager::new(PAGE);
    let ids: Vec<PageId> = (0..pages).map(|_| pager.allocate()).collect();
    for (i, id) in ids.iter().enumerate() {
        pager.write(*id, &[i as u8; PAGE]).unwrap();
    }
    pager.reset_stats();
    (BufferPool::with_config(pager, capacity, config), ids)
}

/// One operation of a fuzzed access trace.
#[derive(Clone, Copy, Debug)]
enum Op {
    Read(u32),
    Write(u32, u8),
    /// Acquire a guard on a page (skipped when C−1 guards are already live).
    Guard(u32),
    /// Drop the oldest live guard.
    Release,
}

fn arb_trace(pages: u32) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0..pages).prop_map(Op::Read),
            ((0..pages), any::<u8>()).prop_map(|(p, v)| Op::Write(p, v)),
            (0..pages).prop_map(Op::Guard),
            Just(Op::Release),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard count 1 ⇒ byte-identical stats to the historical pool's model
    /// on a guard-free trace; any shard count preserves the access total.
    #[test]
    fn single_shard_stats_match_the_serial_model(
        capacity in 1usize..6,
        trace in arb_trace(10),
    ) {
        let mut model = ModelLru::new(capacity);
        let (pool, ids) = pool_over(10, capacity, PoolConfig::default());
        let mut buf = [0u8; PAGE];
        for op in &trace {
            match *op {
                Op::Read(p) | Op::Guard(p) => {
                    pool.read(ids[p as usize], &mut buf).unwrap();
                    model.access(p, false);
                }
                Op::Write(p, v) => {
                    pool.write(ids[p as usize], &[v; PAGE]).unwrap();
                    model.access(p, true);
                }
                Op::Release => {}
            }
        }
        prop_assert_eq!(pool.stats(), model.stats);

        for shards in [2usize, 4] {
            let (pool, ids) = pool_over(10, capacity, PoolConfig::sharded(shards));
            for op in &trace {
                match *op {
                    Op::Read(p) | Op::Guard(p) => {
                        pool.read(ids[p as usize], &mut buf).unwrap();
                    }
                    Op::Write(p, v) => pool.write(ids[p as usize], &[v; PAGE]).unwrap(),
                    Op::Release => {}
                }
            }
            let s = pool.stats();
            prop_assert_eq!(
                s.accesses(),
                model.stats.accesses(),
                "hit+miss total must not depend on the shard count"
            );
            let per_shard: u64 = pool.shard_stats().iter().map(PoolStats::accesses).sum();
            prop_assert_eq!(per_shard, s.accesses());
        }
    }

    /// With up to C−1 live guards, pinned pages are never evicted and every
    /// guard keeps its acquisition-time snapshot — under both policies and
    /// under sharding.
    #[test]
    fn pinned_pages_are_never_evicted(
        capacity in 2usize..6,
        shards in 1usize..3,
        clock in any::<bool>(),
        trace in arb_trace(12),
    ) {
        let config = PoolConfig {
            shards,
            eviction: if clock { EvictionPolicy::Clock } else { EvictionPolicy::Lru },
        };
        let (pool, ids) = pool_over(12, capacity, config);
        // Current full-page fill value per page (initial fill = page index).
        let mut contents: HashMap<u32, u8> = (0..12u32).map(|p| (p, p as u8)).collect();
        // Live guards with their page index and acquisition-time snapshot.
        let mut guards: Vec<(sdj_storage::PageGuard, u32, u8)> = Vec::new();
        let mut buf = [0u8; PAGE];
        for op in trace {
            match op {
                Op::Read(p) => {
                    pool.read(ids[p as usize], &mut buf).unwrap();
                    assert_eq!(buf, [contents[&p]; PAGE]);
                }
                Op::Write(p, v) => {
                    pool.write(ids[p as usize], &[v; PAGE]).unwrap();
                    contents.insert(p, v);
                }
                Op::Guard(p) => {
                    if guards.len() < capacity - 1 {
                        let g = pool.read_guard(ids[p as usize]).unwrap();
                        guards.push((g, p, contents[&p]));
                    }
                }
                Op::Release => {
                    if !guards.is_empty() {
                        guards.remove(0);
                    }
                }
            }
            for (g, _, want) in &guards {
                prop_assert_eq!(&**g, &[*want; PAGE][..], "guard must keep its snapshot");
            }
        }
        // Every page a live pinned guard protects is still resident:
        // re-reading it must be a hit (pinned frames are never eviction
        // victims). Transient guards — taken while their whole shard was
        // pinned — cached nothing, so they carry no such promise.
        let before = pool.stats().misses;
        for (g, p, _) in &guards {
            if g.is_pinned() {
                pool.read(ids[*p as usize], &mut buf).unwrap();
                assert_eq!(buf, [contents[p]; PAGE]);
            }
        }
        prop_assert_eq!(
            pool.stats().misses, before,
            "a pinned page was evicted under pressure"
        );
        prop_assert!(pool.resident() <= capacity, "transient reads must not be cached");
    }
}

/// Pin safety, demand-hit property, stated directly: hold guards on C−1
/// distinct pages, churn every other page through the pool, then demand the
/// pinned pages again — zero new misses.
#[test]
fn held_guards_pin_their_pages_through_churn() {
    for config in [
        PoolConfig::default(),
        PoolConfig {
            shards: 1,
            eviction: EvictionPolicy::Clock,
        },
        PoolConfig::sharded(2),
    ] {
        let (pool, ids) = pool_over(16, 4, config);
        let g0 = pool.read_guard(ids[0]).unwrap();
        let g1 = pool.read_guard(ids[1]).unwrap();
        assert!(g0.is_pinned() && g1.is_pinned());
        let mut buf = [0u8; PAGE];
        for _ in 0..3 {
            for id in &ids[2..] {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        let before = pool.stats().misses;
        pool.read(ids[0], &mut buf).unwrap();
        pool.read(ids[1], &mut buf).unwrap();
        assert_eq!(
            pool.stats().misses,
            before,
            "pinned pages were evicted under churn ({config:?})"
        );
        assert_eq!(&*g0, &[0u8; PAGE]);
        assert_eq!(&*g1, &[1u8; PAGE]);
    }
}

/// Concurrency stress: threads holding guards, updating pages and issuing
/// prefetch hints across shards must make progress (no deadlock), never
/// observe a torn page, and keep the demand-access accounting exact.
#[test]
fn threaded_pin_evict_stress() {
    for shards in [1usize, 4] {
        let (pool, ids) = pool_over(24, 8, PoolConfig::sharded(shards));
        const THREADS: u64 = 4;
        const OPS: u64 = 2000;
        let demand_ops: u64 = std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for t in 0..THREADS {
                let pool = &pool;
                let ids = &ids[..];
                workers.push(scope.spawn(move || {
                    let mut held: Vec<sdj_storage::PageGuard> = Vec::new();
                    let mut demand = 0u64;
                    let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1);
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    for _ in 0..OPS {
                        let p = ids[(next() % 24) as usize];
                        match next() % 4 {
                            0 => {
                                let g = pool.read_guard(p).unwrap();
                                demand += 1;
                                let first = g[0];
                                assert!(
                                    g.iter().all(|&b| b == first),
                                    "torn page observed through a guard"
                                );
                                if held.len() >= 3 {
                                    held.remove(0);
                                }
                                held.push(g);
                            }
                            1 => {
                                let v = (next() % 251) as u8;
                                pool.update(p, |data| data.fill(v)).unwrap();
                                demand += 1;
                            }
                            2 => {
                                let q = ids[(next() % 24) as usize];
                                pool.prefetch(&[p, q]);
                            }
                            _ => {
                                let mut buf = [0u8; PAGE];
                                pool.read(p, &mut buf).unwrap();
                                demand += 1;
                                let first = buf[0];
                                assert!(
                                    buf.iter().all(|&b| b == first),
                                    "torn page observed through read()"
                                );
                            }
                        }
                        // Held guards stay uniform snapshots forever.
                        for g in &held {
                            let first = g[0];
                            assert!(g.iter().all(|&b| b == first), "guard snapshot torn");
                        }
                    }
                    demand
                }));
            }
            workers.into_iter().map(|w| w.join().unwrap()).sum()
        });
        let s = pool.stats();
        // Demand accounting is exact under contention: every read/update/
        // guard op is one hit or one miss; prefetch never counts as demand.
        assert_eq!(
            s.accesses(),
            demand_ops,
            "lost or duplicated demand accesses"
        );
        assert!(demand_ops > 0 && demand_ops < THREADS * OPS);
        assert!(pool.resident() <= 8, "pool exceeded its frame budget");
        pool.flush_all().unwrap();
    }
}
