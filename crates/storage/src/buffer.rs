//! LRU buffer pool.
//!
//! A fixed number of page-sized frames sits in front of the [`Pager`]. Every
//! page access goes through [`BufferPool::read`] / [`BufferPool::write`]; a
//! miss faults the page in from the pager (evicting the least recently used
//! frame, writing it back if dirty). The experiments report buffer misses as
//! "node I/O", matching the paper's setup of a 256K buffer over 1K pages.
//!
//! The recency list is an intrusive doubly-linked list over frame indices, so
//! hits, evictions and invalidations are all O(1) (plus hashing).
//!
//! The pool is internally synchronised with a [`Mutex`] so that indexes built
//! on top of it are `Sync` and can be shared across the parallel executor's
//! worker threads. Distance computation dominates node reads in the join hot
//! path, so the single lock is not a meaningful serialisation point.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sdj_obs::{Counter, Event, EventSink, ObsContext};

use crate::{PageId, Pager, Result};

/// Cumulative buffer-pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that had to fault the page in from disk. This is the
    /// experiments' "node I/O" measure.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to disk (on eviction or flush).
    pub writebacks: u64,
}

impl PoolStats {
    /// Total page accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Observability handle for a buffer pool: counters pre-registered under a
/// caller-chosen prefix (so several pools — tree nodes, queue spill pages —
/// stay distinguishable in one registry) plus the shared event sink, which
/// receives a [`Event::BufferEvict`] per eviction.
#[derive(Clone)]
pub struct BufferObs {
    sink: Arc<dyn EventSink>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl BufferObs {
    /// Builds the handle from a context, registering `{prefix}.hits`,
    /// `{prefix}.misses` and `{prefix}.evictions`.
    #[must_use]
    pub fn new(ctx: &ObsContext, prefix: &str) -> Self {
        Self {
            sink: Arc::clone(&ctx.sink),
            hits: ctx.registry.counter(&format!("{prefix}.hits")),
            misses: ctx.registry.counter(&format!("{prefix}.misses")),
            evictions: ctx.registry.counter(&format!("{prefix}.evictions")),
        }
    }
}

impl std::fmt::Debug for BufferObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferObs").finish_non_exhaustive()
    }
}

const NIL: usize = usize::MAX;

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    prev: usize,
    next: usize,
}

struct PoolInner {
    pager: Pager,
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    /// Most recently used frame.
    head: usize,
    /// Least recently used frame.
    tail: usize,
    capacity: usize,
    stats: PoolStats,
    obs: Option<BufferObs>,
}

/// An LRU page cache in front of a [`Pager`].
///
/// Methods take `&self`: the pool uses interior mutability so that read-only
/// index traversals can fault pages without exclusive access to the tree.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("BufferPool")
            .field("capacity", &inner.capacity)
            .field("resident", &inner.frames.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `pager`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(pager: Pager, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        Self {
            inner: Mutex::new(PoolInner {
                pager,
                frames: Vec::with_capacity(capacity.min(4096)),
                map: HashMap::new(),
                head: NIL,
                tail: NIL,
                capacity,
                stats: PoolStats::default(),
                obs: None,
            }),
        }
    }

    /// Attaches an observability handle: subsequent hits, misses and
    /// evictions are mirrored into its counters and evictions emit a
    /// [`Event::BufferEvict`]. The counters start from the attach point —
    /// they are deltas, not a copy of [`BufferPool::stats`].
    pub fn attach_obs(&self, obs: BufferObs) {
        self.lock().obs = Some(obs);
    }

    /// Acquires the pool lock; a poisoned lock is recovered since every
    /// invariant of `PoolInner` holds between public calls.
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The underlying page size.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.lock().pager.page_size()
    }

    /// Allocates a new zero-filled page on the underlying pager.
    pub fn allocate(&self) -> PageId {
        self.lock().pager.allocate()
    }

    /// Frees a page, dropping any cached copy of it.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut inner = self.lock();
        if let Some(idx) = inner.map.remove(&id) {
            inner.unlink(idx);
            inner.discard_frame(idx);
        }
        inner.pager.free(id)
    }

    /// Reads page `id` through the cache, calling `f` with its bytes.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mut inner = self.lock();
        let idx = inner.fetch(id)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Reads page `id` into `buf` (one full page) through the cache.
    pub fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        self.with_page(id, |data| buf.copy_from_slice(data))
    }

    /// Writes page `id` through the cache (write-back: the page is marked
    /// dirty and flushed on eviction or [`BufferPool::flush_all`]).
    pub fn write(&self, id: PageId, buf: &[u8]) -> Result<()> {
        let mut inner = self.lock();
        let idx = inner.fetch(id)?;
        inner.frames[idx].data.copy_from_slice(buf);
        inner.frames[idx].dirty = true;
        Ok(())
    }

    /// Modifies page `id` in place through the cache, marking it dirty.
    pub fn update<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut inner = self.lock();
        let idx = inner.fetch(id)?;
        let r = f(&mut inner.frames[idx].data);
        inner.frames[idx].dirty = true;
        Ok(r)
    }

    /// Writes all dirty frames back to the pager.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.lock();
        for idx in 0..inner.frames.len() {
            if inner.frames[idx].dirty {
                let id = inner.frames[idx].page;
                // Split borrow: move data out temporarily via raw indexing.
                let data = std::mem::take(&mut inner.frames[idx].data);
                let res = inner.pager.write(id, &data);
                inner.frames[idx].data = data;
                res?;
                inner.frames[idx].dirty = false;
                inner.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Current pool counters.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        self.lock().stats
    }

    /// Current disk counters of the underlying pager.
    #[must_use]
    pub fn disk_stats(&self) -> crate::DiskStats {
        self.lock().pager.stats()
    }

    /// Resets pool and disk counters.
    pub fn reset_stats(&self) {
        let mut inner = self.lock();
        inner.stats = PoolStats::default();
        inner.pager.reset_stats();
    }

    /// Number of frames currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.lock().map.len()
    }

    /// Consumes the pool, flushing dirty pages, and returns the pager.
    pub fn into_pager(self) -> Result<Pager> {
        self.flush_all()?;
        Ok(self
            .inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pager)
    }

    /// Flushes dirty pages and writes the full disk image to `out`.
    pub fn save_to(
        &self,
        out: &mut impl std::io::Write,
    ) -> std::result::Result<(), crate::PersistError> {
        self.flush_all()?;
        self.lock().pager.save_to(out)
    }
}

impl PoolInner {
    /// Ensures page `id` is resident and most-recently-used; returns its
    /// frame index.
    fn fetch(&mut self, id: PageId) -> Result<usize> {
        if let Some(&idx) = self.map.get(&id) {
            self.stats.hits += 1;
            if let Some(obs) = &self.obs {
                obs.hits.inc();
            }
            self.touch(idx);
            return Ok(idx);
        }
        self.stats.misses += 1;
        if let Some(obs) = &self.obs {
            obs.misses.inc();
        }
        let mut data = vec![0u8; self.pager.page_size()].into_boxed_slice();
        self.pager.read(id, &mut data)?;
        let idx = if self.frames.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let old = self.frames[victim].page;
            self.map.remove(&old);
            let writeback = self.frames[victim].dirty;
            if writeback {
                let old_data = std::mem::take(&mut self.frames[victim].data);
                let res = self.pager.write(old, &old_data);
                self.frames[victim].data = old_data;
                res?;
                self.stats.writebacks += 1;
            }
            self.stats.evictions += 1;
            if let Some(obs) = &self.obs {
                obs.evictions.inc();
                obs.sink.emit(&Event::BufferEvict { writeback });
            }
            self.frames[victim] = Frame {
                page: id,
                data,
                dirty: false,
                prev: NIL,
                next: NIL,
            };
            victim
        } else {
            self.frames.push(Frame {
                page: id,
                data,
                dirty: false,
                prev: NIL,
                next: NIL,
            });
            self.frames.len() - 1
        };
        self.map.insert(id, idx);
        self.push_front(idx);
        Ok(idx)
    }

    /// Moves frame `idx` to the front (most recently used).
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    /// Marks a frame as reusable after its page has been freed: it is made
    /// clean, tagged with the invalid page id, and parked at the LRU tail so
    /// it becomes the next eviction victim (with no write-back).
    fn discard_frame(&mut self, idx: usize) {
        self.frames[idx].dirty = false;
        self.frames[idx].page = PageId::INVALID;
        self.push_back(idx);
    }

    fn push_back(&mut self, idx: usize) {
        self.frames[idx].next = NIL;
        self.frames[idx].prev = self.tail;
        if self.tail != NIL {
            self.frames[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> (BufferPool, Vec<PageId>) {
        let mut pager = Pager::new(8);
        let ids: Vec<PageId> = (0..10).map(|_| pager.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            pager.write(*id, &[i as u8; 8]).unwrap();
        }
        pager.reset_stats();
        (BufferPool::new(pager, frames), ids)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        pool.read(ids[0], &mut buf).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let (pool, ids) = pool(2);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap(); // miss
        pool.read(ids[1], &mut buf).unwrap(); // miss
        pool.read(ids[0], &mut buf).unwrap(); // hit; 1 is now LRU
        pool.read(ids[2], &mut buf).unwrap(); // miss, evicts 1
        pool.read(ids[0], &mut buf).unwrap(); // still resident -> hit
        pool.read(ids[1], &mut buf).unwrap(); // evicted -> miss
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn writeback_on_eviction() {
        let (pool, ids) = pool(1);
        pool.write(ids[0], &[0xAB; 8]).unwrap();
        let mut buf = [0u8; 8];
        pool.read(ids[1], &mut buf).unwrap(); // evicts dirty page 0
        assert_eq!(pool.stats().writebacks, 1);
        pool.read(ids[0], &mut buf).unwrap(); // re-read from disk
        assert_eq!(buf, [0xAB; 8]);
    }

    #[test]
    fn flush_all_persists() {
        let (pool, ids) = pool(4);
        pool.write(ids[3], &[7; 8]).unwrap();
        pool.flush_all().unwrap();
        let mut pager = pool.into_pager().unwrap();
        let mut buf = [0u8; 8];
        pager.read(ids[3], &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn update_in_place() {
        let (pool, ids) = pool(4);
        pool.update(ids[2], |data| data[0] = 99).unwrap();
        let mut buf = [0u8; 8];
        pool.read(ids[2], &mut buf).unwrap();
        assert_eq!(buf[0], 99);
        assert_eq!(buf[1], 2);
    }

    #[test]
    fn free_drops_cached_copy() {
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        pool.free(ids[0]).unwrap();
        assert!(pool.read(ids[0], &mut buf).is_err());
        // Allocate a fresh page reusing the freed slot; must read as zeroes,
        // not the stale cached frame.
        let id = pool.allocate();
        assert_eq!(id, ids[0]);
        pool.read(id, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn capacity_one_thrashes() {
        let (pool, ids) = pool(1);
        let mut buf = [0u8; 8];
        for round in 0..3 {
            for id in &ids[..3] {
                pool.read(*id, &mut buf).unwrap();
            }
            let _ = round;
        }
        let s = pool.stats();
        assert_eq!(s.hits, 0, "no reuse distance fits in one frame");
        assert_eq!(s.misses, 9);
    }

    #[test]
    fn working_set_fits_after_warmup() {
        let (pool, ids) = pool(8);
        let mut buf = [0u8; 8];
        for _ in 0..5 {
            for id in &ids[..6] {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 6, "only cold misses");
        assert_eq!(s.hits, 24);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn obs_mirrors_stats_and_emits_evictions() {
        use sdj_obs::{ObsContext, RingRecorder};
        let ring = Arc::new(RingRecorder::new(16));
        let ctx = ObsContext::new(ring.clone() as Arc<dyn EventSink>);
        let (pool, ids) = pool(2);
        pool.attach_obs(BufferObs::new(&ctx, "buf"));
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap(); // miss
        pool.read(ids[0], &mut buf).unwrap(); // hit
        pool.write(ids[1], &[1; 8]).unwrap(); // miss, dirties ids[1]
        pool.read(ids[2], &mut buf).unwrap(); // miss, evicts clean ids[0]
        pool.read(ids[0], &mut buf).unwrap(); // miss, evicts dirty ids[1]
        let s = pool.stats();
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("buf.hits"), Some(s.hits));
        assert_eq!(snap.counter("buf.misses"), Some(s.misses));
        assert_eq!(snap.counter("buf.evictions"), Some(s.evictions));
        let counts = ring.counts();
        assert_eq!(counts.buffer_evict, 2);
        assert_eq!(counts.writebacks, 1);
    }

    #[test]
    fn many_pages_sequential_scan() {
        // A scan over more pages than frames misses every time (LRU worst
        // case), which is the access pattern the hybrid queue's disk tier
        // must tolerate.
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        for _ in 0..3 {
            for id in &ids {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 30);
    }
}
