//! Sharded concurrent buffer pool with pinned zero-copy page guards.
//!
//! A fixed number of page-sized frames sits in front of the [`Pager`],
//! split across N independent shards (pages hashed by [`PageId`]). Every
//! page access locks only its shard; the pager itself sits behind a second,
//! pool-wide lock that is taken *only* to fault a page in or write a dirty
//! frame back — a hit never touches it, so concurrent readers of different
//! shards never serialise. The experiments report demand buffer misses as
//! "node I/O", matching the paper's setup of a 256K buffer over 1K pages.
//!
//! Reads hand out [`PageGuard`]s: a reference-counted pin on the frame that
//! derefs straight to the page bytes. A guard is acquired under the shard
//! lock but outlives it, so node decoding happens without any lock held and
//! without copying the page out of the frame. Eviction skips pinned frames,
//! and writes to a pinned page copy-on-write, so an outstanding guard is
//! always a consistent snapshot of the page it pinned.
//!
//! Two eviction policies are available per pool. [`EvictionPolicy::Lru`]
//! (the default, and the only policy of the historical single-lock pool) is
//! an intrusive doubly-linked recency list over frame indices — hits,
//! evictions and invalidations are all O(1) (plus hashing), and with one
//! shard its counters are byte-identical to the historical pool's, keeping
//! EXPERIMENTS.md miss counts comparable. [`EvictionPolicy::Clock`]
//! (second chance) replaces the list with a reference bit and a sweeping
//! hand; it is the natural policy for the sharded configuration because a
//! hit is a single bit set instead of a list splice.
//!
//! [`BufferPool::prefetch`] accepts batch hints ("these pages are about to
//! be read") and faults absent ones in, counting them as `prefetch_reads` —
//! *not* demand misses — so the node-I/O measure stays honest; a later
//! demand access that lands on a prefetched frame counts as a hit and as a
//! `prefetch_hit`.

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use sdj_obs::{Counter, Event, EventSink, LeafSpan, ObsContext, Phase};

use crate::{PageId, Pager, Result};

/// Cumulative buffer-pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Demand accesses served from the pool.
    pub hits: u64,
    /// Demand accesses that had to fault the page in from disk. This is the
    /// experiments' "node I/O" measure; prefetch reads are *not* included.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to disk (on eviction, flush, or a
    /// write-through when every frame of a shard was pinned).
    pub writebacks: u64,
    /// Pages faulted in by [`BufferPool::prefetch`] hints.
    pub prefetch_reads: u64,
    /// Demand hits served by a frame a prefetch brought in (each prefetched
    /// frame is counted at most once, on its first demand access).
    pub prefetch_hits: u64,
    /// Full-page byte copies performed by the copying [`BufferPool::read`]
    /// API. The [`PageGuard`] path never copies, so this stays zero for
    /// guard-based readers — the benchmarks assert exactly that.
    pub read_copies: u64,
    /// Acquisitions of the pool-wide pager lock. Only faults, write-backs
    /// and administrative calls take it; hits hold nothing but their shard's
    /// lock, so `accesses() - shared_lock_acquisitions` approximates the
    /// global-lock acquisitions a single-mutex pool would have paid.
    pub shared_lock_acquisitions: u64,
    /// Device-level operations that failed under the pool (each failed
    /// attempt counts once, whether or not a retry later succeeded).
    pub faults: u64,
    /// Retry attempts made for transient faults (a fault that succeeds on
    /// its second attempt contributes 1 fault and 1 retry).
    pub retries: u64,
}

impl PoolStats {
    /// Total demand page accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Adds another stats snapshot into this one (used to aggregate shards,
    /// or the two trees of a join).
    pub fn absorb(&mut self, o: &PoolStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
        self.prefetch_reads += o.prefetch_reads;
        self.prefetch_hits += o.prefetch_hits;
        self.read_copies += o.read_copies;
        self.shared_lock_acquisitions += o.shared_lock_acquisitions;
        self.faults += o.faults;
        self.retries += o.retries;
    }

    /// The counter deltas accumulated since `baseline` was snapshotted.
    /// All counters are monotonic, so this is how a session attributes the
    /// traffic of one serialized pull window on a shared pool to itself.
    #[must_use]
    pub fn since(&self, baseline: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits - baseline.hits,
            misses: self.misses - baseline.misses,
            evictions: self.evictions - baseline.evictions,
            writebacks: self.writebacks - baseline.writebacks,
            prefetch_reads: self.prefetch_reads - baseline.prefetch_reads,
            prefetch_hits: self.prefetch_hits - baseline.prefetch_hits,
            read_copies: self.read_copies - baseline.read_copies,
            shared_lock_acquisitions: self.shared_lock_acquisitions
                - baseline.shared_lock_acquisitions,
            faults: self.faults - baseline.faults,
            retries: self.retries - baseline.retries,
        }
    }
}

/// Observability handle for a buffer pool: counters pre-registered under a
/// caller-chosen prefix (so several pools — tree nodes, queue spill pages —
/// stay distinguishable in one registry) plus the shared event sink, which
/// receives a [`Event::BufferEvict`] per eviction.
#[derive(Clone)]
pub struct BufferObs {
    sink: Arc<dyn EventSink>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    writebacks: Arc<Counter>,
    prefetch_reads: Arc<Counter>,
    prefetch_hits: Arc<Counter>,
    faults: Arc<Counter>,
    retries: Arc<Counter>,
    /// Always-timed [`Phase::Io`] accumulator: every page fault (demand
    /// miss, update miss, or prefetch) records its pager time here, so the
    /// engine's sampled spans can subtract real I/O from their self-time.
    io_span: Option<LeafSpan>,
}

impl BufferObs {
    /// Builds the handle from a context, registering `{prefix}.hits`,
    /// `{prefix}.misses`, `{prefix}.evictions`, `{prefix}.writebacks`,
    /// `{prefix}.prefetch_reads`, `{prefix}.prefetch_hits`,
    /// `{prefix}.faults` and `{prefix}.retries`.
    #[must_use]
    pub fn new(ctx: &ObsContext, prefix: &str) -> Self {
        Self {
            sink: Arc::clone(&ctx.sink),
            hits: ctx.registry.counter(&format!("{prefix}.hits")),
            misses: ctx.registry.counter(&format!("{prefix}.misses")),
            evictions: ctx.registry.counter(&format!("{prefix}.evictions")),
            writebacks: ctx.registry.counter(&format!("{prefix}.writebacks")),
            prefetch_reads: ctx.registry.counter(&format!("{prefix}.prefetch_reads")),
            prefetch_hits: ctx.registry.counter(&format!("{prefix}.prefetch_hits")),
            faults: ctx.registry.counter(&format!("{prefix}.faults")),
            retries: ctx.registry.counter(&format!("{prefix}.retries")),
            io_span: LeafSpan::from_context(ctx, Phase::Io),
        }
    }
}

impl std::fmt::Debug for BufferObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferObs").finish_non_exhaustive()
    }
}

/// Per-shard frame replacement policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Exact least-recently-used via an intrusive recency list. This is the
    /// historical pool's policy: with one shard, all counters are
    /// byte-identical to the old single-lock pool on any access trace.
    #[default]
    Lru,
    /// CLOCK / second chance: one reference bit per frame, cleared by a
    /// sweeping hand. Hits are a bit set instead of a list splice, which is
    /// what the sharded concurrent configuration wants.
    Clock,
}

/// Construction parameters of a [`BufferPool`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of independent shards the frames are split across. Pages map
    /// to shards by `page_id % shards`, so consecutively allocated pages
    /// round-robin across shards. Clamped to the frame capacity (every
    /// shard needs at least one frame).
    pub shards: usize,
    /// Frame replacement policy of every shard.
    pub eviction: EvictionPolicy,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            eviction: EvictionPolicy::Lru,
        }
    }
}

impl PoolConfig {
    /// The sharded concurrent configuration: `shards` CLOCK shards.
    #[must_use]
    pub fn sharded(shards: usize) -> Self {
        Self {
            shards,
            eviction: EvictionPolicy::Clock,
        }
    }
}

/// A pinned, zero-copy view of one page.
///
/// Dereferences to the page bytes as they were when the guard was acquired.
/// While any guard on a page is live, the frame cannot be evicted; a write
/// to the page copies-on-write, so the guard keeps observing its consistent
/// snapshot. Guards hold no lock — they may be kept across arbitrary calls
/// (including further pool accesses) without blocking anyone.
pub struct PageGuard {
    data: Arc<Box<[u8]>>,
    /// The frame's pin token; `None` for a transient (uncached) fault, which
    /// has no frame to protect.
    pin: Option<Arc<AtomicU32>>,
}

impl PageGuard {
    /// Whether this guard pins a pool frame (false for a transient read
    /// taken while every frame of the page's shard was pinned).
    #[must_use]
    pub fn is_pinned(&self) -> bool {
        self.pin.is_some()
    }
}

impl Deref for PageGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Clone for PageGuard {
    fn clone(&self) -> Self {
        if let Some(pin) = &self.pin {
            pin.fetch_add(1, Ordering::Relaxed);
        }
        Self {
            data: Arc::clone(&self.data),
            pin: self.pin.clone(),
        }
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        if let Some(pin) = &self.pin {
            pin.fetch_sub(1, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageGuard")
            .field("len", &self.data.len())
            .field("pinned", &self.is_pinned())
            .finish()
    }
}

const NIL: usize = usize::MAX;

struct Frame {
    page: PageId,
    /// The page bytes. Shared with outstanding [`PageGuard`]s; mutation goes
    /// through `Arc::make_mut`, which copies-on-write when guards are live.
    data: Arc<Box<[u8]>>,
    /// Pin count of this frame. Incremented under the shard lock when a
    /// guard is handed out, decremented lock-free on guard drop; eviction
    /// (which runs under the shard lock) skips any frame it reads as pinned.
    pins: Arc<AtomicU32>,
    dirty: bool,
    /// CLOCK reference bit (unused under LRU).
    referenced: bool,
    /// Brought in by a prefetch hint and not yet demanded.
    prefetched: bool,
    /// LRU recency links (unused under CLOCK).
    prev: usize,
    next: usize,
}

impl Frame {
    fn new(page: PageId, data: Box<[u8]>, prefetched: bool) -> Self {
        Self {
            page,
            data: Arc::new(data),
            pins: Arc::new(AtomicU32::new(0)),
            dirty: false,
            referenced: true,
            prefetched,
            prev: NIL,
            next: NIL,
        }
    }

    fn pin_count(&self) -> u32 {
        self.pins.load(Ordering::Acquire)
    }
}

/// Outcome of faulting a page into a shard.
enum Fetched {
    /// The page landed in (or was already in) frame `idx`.
    Resident(usize),
    /// Every frame of the shard was pinned: the page was read into a
    /// transient, uncached buffer instead.
    Transient(Box<[u8]>),
}

struct ShardInner {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    /// Most recently used frame (LRU only).
    head: usize,
    /// Least recently used frame (LRU only).
    tail: usize,
    /// Sweep position (CLOCK only).
    hand: usize,
    capacity: usize,
    policy: EvictionPolicy,
    stats: PoolStats,
    obs: Option<BufferObs>,
}

struct Shard {
    inner: Mutex<ShardInner>,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardInner> {
        // A poisoned lock is recovered: every invariant of `ShardInner`
        // holds between public calls.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A sharded page cache in front of a [`Pager`].
///
/// Methods take `&self`: the pool uses interior mutability so that read-only
/// index traversals can fault pages without exclusive access to the tree,
/// and so the parallel executor's workers can share it. Lock order is
/// always shard → pager; hits take only the shard lock.
pub struct BufferPool {
    shards: Box<[Shard]>,
    pager: Mutex<Pager>,
    page_size: usize,
    capacity: usize,
    /// Copies performed by the copying `read` API (pool-wide; the shard
    /// lock is already released when the copy happens).
    read_copies: AtomicU64,
    /// Pool-wide pager-lock acquisition count.
    shared_locks: AtomicU64,
    /// Maximum number of retries for a transient device fault (0 = fail on
    /// the first fault, the historical behaviour).
    retry_limit: AtomicU32,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("resident", &self.resident())
            .field("stats", &self.stats())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool of `capacity` frames over `pager` with the default
    /// configuration (one LRU shard — the historical pool, byte-identical
    /// counters included).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(pager: Pager, capacity: usize) -> Self {
        Self::with_config(pager, capacity, PoolConfig::default())
    }

    /// Creates a pool of `capacity` frames over `pager`, split into
    /// `config.shards` shards (clamped to `capacity`) with the configured
    /// eviction policy.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_config(pager: Pager, capacity: usize, config: PoolConfig) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let n = config.shards.clamp(1, capacity);
        let page_size = pager.page_size();
        let shards = (0..n)
            .map(|i| {
                // Distribute frames as evenly as possible; the sum over
                // shards is exactly `capacity`.
                let cap = capacity / n + usize::from(i < capacity % n);
                Shard {
                    inner: Mutex::new(ShardInner {
                        frames: Vec::with_capacity(cap.min(4096)),
                        map: HashMap::new(),
                        head: NIL,
                        tail: NIL,
                        hand: 0,
                        capacity: cap,
                        policy: config.eviction,
                        stats: PoolStats::default(),
                        obs: None,
                    }),
                }
            })
            .collect();
        Self {
            shards,
            pager: Mutex::new(pager),
            page_size,
            capacity,
            read_copies: AtomicU64::new(0),
            shared_locks: AtomicU64::new(0),
            retry_limit: AtomicU32::new(0),
        }
    }

    /// Sets the bounded retry policy: how many times a transient device
    /// fault is retried before it is surfaced. Zero (the default) fails on
    /// the first fault. Non-transient faults are never retried.
    pub fn set_retry_limit(&self, retries: u32) {
        self.retry_limit.store(retries, Ordering::Relaxed);
    }

    /// The current transient-fault retry limit.
    #[must_use]
    pub fn retry_limit(&self) -> u32 {
        self.retry_limit.load(Ordering::Relaxed)
    }

    /// Installs (or clears) a deterministic fault injector on the underlying
    /// pager. See [`crate::fault::FaultInjector`].
    pub fn set_fault_injector(&self, injector: Option<Arc<crate::fault::FaultInjector>>) {
        self.lock_pager().set_fault_injector(injector);
    }

    /// Attaches an observability handle: subsequent hits, misses, evictions,
    /// write-backs and prefetches are mirrored into its counters and
    /// evictions emit a [`Event::BufferEvict`]. The counters start from the
    /// attach point — they are deltas, not a copy of [`BufferPool::stats`].
    pub fn attach_obs(&self, obs: BufferObs) {
        for shard in self.shards.iter() {
            shard.lock().obs = Some(obs.clone());
        }
    }

    fn shard_for(&self, id: PageId) -> &Shard {
        &self.shards[(id.0 as usize) % self.shards.len()]
    }

    fn lock_pager(&self) -> MutexGuard<'_, Pager> {
        self.shared_locks.fetch_add(1, Ordering::Relaxed);
        self.pager
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The underlying page size.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of shards the frames are split across.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Allocates a new zero-filled page on the underlying pager.
    pub fn allocate(&self) -> PageId {
        self.lock_pager().allocate()
    }

    /// Allocates a new zero-filled page, surfacing
    /// [`crate::StorageError::DiskFull`] when an installed fault injector's
    /// allocation budget is exhausted. Runtime consumers that can recover
    /// from a full disk (the hybrid queue's spill tier) use this instead of
    /// [`BufferPool::allocate`].
    pub fn try_allocate(&self) -> Result<PageId> {
        self.lock_pager().try_allocate()
    }

    /// Frees a page, dropping any cached copy of it.
    pub fn free(&self, id: PageId) -> Result<()> {
        let mut s = self.shard_for(id).lock();
        if let Some(idx) = s.map.remove(&id) {
            s.discard_frame(idx);
        }
        // Shard stays locked so a racing read cannot re-cache the page
        // between the discard and the pager-level free.
        self.lock_pager().free(id)
    }

    /// Faults `id` into the (locked) shard, evicting if necessary. The
    /// caller has already counted the access; this only performs I/O and
    /// eviction bookkeeping. Returns a transient buffer when every frame is
    /// pinned.
    fn fault(&self, s: &mut ShardInner, id: PageId, prefetched: bool) -> Result<Fetched> {
        let timed = s
            .obs
            .as_ref()
            .is_some_and(|o| o.io_span.is_some())
            .then(std::time::Instant::now);
        let r = self.fault_inner(s, id, prefetched);
        if let (Some(t0), Some(obs)) = (timed, &s.obs) {
            if let Some(span) = &obs.io_span {
                span.record_ns(t0.elapsed().as_nanos() as u64);
            }
        }
        r
    }

    fn fault_inner(&self, s: &mut ShardInner, id: PageId, prefetched: bool) -> Result<Fetched> {
        let mut data = vec![0u8; self.page_size].into_boxed_slice();
        let limit = self.retry_limit();
        // One pager-lock acquisition covers the read and any write-back.
        s.stats.shared_lock_acquisitions += 1;
        let mut pager = self.lock_pager();
        let mut failed = 0u32;
        loop {
            match pager.read(id, &mut data) {
                Ok(()) => {
                    s.note_retry_success(failed);
                    break;
                }
                Err(e) => {
                    s.note_fault(false, &e);
                    if !e.is_transient() || failed >= limit {
                        return Err(e);
                    }
                    failed += 1;
                }
            }
        }
        if s.frames.len() >= s.capacity {
            let Some(victim) = s.pick_victim() else {
                return Ok(Fetched::Transient(data));
            };
            s.evict(victim, &mut pager, limit)?;
            drop(pager);
            s.frames[victim] = Frame::new(id, data, prefetched);
            s.map.insert(id, victim);
            s.link_new(victim);
            return Ok(Fetched::Resident(victim));
        }
        drop(pager);
        let idx = s.frames.len();
        s.frames.push(Frame::new(id, data, prefetched));
        s.map.insert(id, idx);
        s.link_new(idx);
        Ok(Fetched::Resident(idx))
    }

    /// Reads page `id` through the cache, returning a pinned zero-copy
    /// guard. The shard lock is released before returning, so the guard may
    /// be held for arbitrarily long (the frame just stays ineligible for
    /// eviction).
    pub fn read_guard(&self, id: PageId) -> Result<PageGuard> {
        let mut s = self.shard_for(id).lock();
        if let Some(&idx) = s.map.get(&id) {
            s.on_hit(idx);
            return Ok(s.pin(idx));
        }
        s.on_miss();
        match self.fault(&mut s, id, false)? {
            Fetched::Resident(idx) => Ok(s.pin(idx)),
            Fetched::Transient(data) => Ok(PageGuard {
                data: Arc::new(data),
                pin: None,
            }),
        }
    }

    /// Reads page `id` through the cache, calling `f` with its bytes. No
    /// lock is held while `f` runs and no bytes are copied — `f` borrows
    /// the frame through a pinned guard.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let guard = self.read_guard(id)?;
        Ok(f(&guard))
    }

    /// Reads page `id` into `buf` (one full page) through the cache.
    ///
    /// This is the copying API — each call pays a `page_size` memcpy,
    /// counted in [`PoolStats::read_copies`]. Hot paths should prefer
    /// [`BufferPool::read_guard`] / [`BufferPool::with_page`], which don't.
    pub fn read(&self, id: PageId, buf: &mut [u8]) -> Result<()> {
        let guard = self.read_guard(id)?;
        self.read_copies.fetch_add(1, Ordering::Relaxed);
        buf.copy_from_slice(&guard);
        Ok(())
    }

    /// Writes page `id` through the cache (write-back: the page is marked
    /// dirty and flushed on eviction or [`BufferPool::flush_all`]). If the
    /// frame is pinned by outstanding guards, the new bytes copy-on-write:
    /// the guards keep their snapshot.
    pub fn write(&self, id: PageId, buf: &[u8]) -> Result<()> {
        self.update(id, |data| data.copy_from_slice(buf))
    }

    /// Modifies page `id` in place through the cache, marking it dirty.
    /// Copy-on-write if the frame is pinned (see [`BufferPool::write`]).
    pub fn update<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut s = self.shard_for(id).lock();
        let idx = if let Some(&idx) = s.map.get(&id) {
            s.on_hit(idx);
            idx
        } else {
            s.on_miss();
            match self.fault(&mut s, id, false)? {
                Fetched::Resident(idx) => idx,
                Fetched::Transient(mut data) => {
                    // Every frame pinned: modify the transient buffer and
                    // write it straight through.
                    let r = f(&mut data);
                    s.stats.writebacks += 1;
                    if let Some(obs) = &s.obs {
                        obs.writebacks.inc();
                    }
                    s.stats.shared_lock_acquisitions += 1;
                    let limit = self.retry_limit();
                    let mut pager = self.lock_pager();
                    let mut failed = 0u32;
                    loop {
                        match pager.write(id, &data) {
                            Ok(()) => {
                                s.note_retry_success(failed);
                                break;
                            }
                            Err(e) => {
                                s.note_fault(true, &e);
                                if !e.is_transient() || failed >= limit {
                                    return Err(e);
                                }
                                failed += 1;
                            }
                        }
                    }
                    return Ok(r);
                }
            }
        };
        let frame = &mut s.frames[idx];
        let bytes: &mut Box<[u8]> = Arc::make_mut(&mut frame.data);
        let r = f(bytes);
        frame.dirty = true;
        Ok(r)
    }

    /// Batch prefetch hint: faults absent pages in, counting them as
    /// `prefetch_reads` instead of demand misses. Best-effort — hints for
    /// unknown or freed pages are ignored, resident pages are left alone
    /// (their recency is *not* touched, so hinting never perturbs the
    /// demand hit/miss accounting).
    pub fn prefetch(&self, ids: &[PageId]) {
        for &id in ids {
            let mut s = self.shard_for(id).lock();
            if s.map.contains_key(&id) {
                continue;
            }
            if let Ok(Fetched::Resident(_)) = self.fault(&mut s, id, true) {
                s.stats.prefetch_reads += 1;
                if let Some(obs) = &s.obs {
                    obs.prefetch_reads.inc();
                }
            }
        }
    }

    /// Writes all dirty frames back to the pager.
    pub fn flush_all(&self) -> Result<()> {
        let limit = self.retry_limit();
        for shard in self.shards.iter() {
            let mut s = shard.lock();
            s.stats.shared_lock_acquisitions += 1;
            let mut pager = self.lock_pager();
            for idx in 0..s.frames.len() {
                if s.frames[idx].dirty {
                    let mut failed = 0u32;
                    loop {
                        match pager.write(s.frames[idx].page, &s.frames[idx].data) {
                            Ok(()) => {
                                s.note_retry_success(failed);
                                break;
                            }
                            Err(e) => {
                                s.note_fault(true, &e);
                                if !e.is_transient() || failed >= limit {
                                    return Err(e);
                                }
                                failed += 1;
                            }
                        }
                    }
                    s.frames[idx].dirty = false;
                    s.stats.writebacks += 1;
                    if let Some(obs) = &s.obs {
                        obs.writebacks.inc();
                    }
                }
            }
        }
        Ok(())
    }

    /// Current pool counters, aggregated over all shards.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let mut total = PoolStats::default();
        for shard in self.shards.iter() {
            total.absorb(&shard.lock().stats);
        }
        total.read_copies += self.read_copies.load(Ordering::Relaxed);
        total.shared_lock_acquisitions = self.shared_locks.load(Ordering::Relaxed);
        total
    }

    /// Per-shard counters (`read_copies` and `shared_lock_acquisitions` are
    /// pool-wide and reported by [`BufferPool::stats`] only).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<PoolStats> {
        self.shards
            .iter()
            .map(|shard| {
                let mut s = shard.lock().stats;
                s.shared_lock_acquisitions = 0;
                s
            })
            .collect()
    }

    /// Current disk counters of the underlying pager.
    #[must_use]
    pub fn disk_stats(&self) -> crate::DiskStats {
        self.lock_pager().stats()
    }

    /// Resets pool and disk counters.
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().stats = PoolStats::default();
        }
        self.read_copies.store(0, Ordering::Relaxed);
        self.lock_pager().reset_stats();
        self.shared_locks.store(0, Ordering::Relaxed);
    }

    /// Number of frames currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Number of resident frames currently pinned by outstanding
    /// [`PageGuard`]s. A quiesced pool reads zero; the session service
    /// asserts exactly that after a cursor is cancelled to prove the
    /// dropped engine released every pin.
    #[must_use]
    pub fn pinned_frames(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let inner = s.lock();
                inner
                    .map
                    .values()
                    .filter(|&&idx| inner.frames[idx].pin_count() > 0)
                    .count()
            })
            .sum()
    }

    /// Consumes the pool, flushing dirty pages, and returns the pager.
    pub fn into_pager(self) -> Result<Pager> {
        self.flush_all()?;
        Ok(self
            .pager
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Flushes dirty pages and writes the full disk image to `out`.
    pub fn save_to(
        &self,
        out: &mut impl std::io::Write,
    ) -> std::result::Result<(), crate::PersistError> {
        self.flush_all()?;
        self.lock_pager().save_to(out)
    }
}

impl ShardInner {
    /// Records one failed device operation (counter + event).
    fn note_fault(&mut self, write: bool, e: &crate::StorageError) {
        self.stats.faults += 1;
        if let Some(obs) = &self.obs {
            obs.faults.inc();
            obs.sink.emit(&Event::FaultInjected {
                write,
                transient: e.is_transient(),
            });
        }
    }

    /// Records a success that needed `failed` retries of a transient fault.
    fn note_retry_success(&mut self, failed: u32) {
        if failed > 0 {
            self.stats.retries += u64::from(failed);
            if let Some(obs) = &self.obs {
                obs.retries.add(u64::from(failed));
                obs.sink.emit(&Event::RetrySucceeded { retries: failed });
            }
        }
    }

    fn on_hit(&mut self, idx: usize) {
        self.stats.hits += 1;
        if let Some(obs) = &self.obs {
            obs.hits.inc();
        }
        if self.frames[idx].prefetched {
            self.frames[idx].prefetched = false;
            self.stats.prefetch_hits += 1;
            if let Some(obs) = &self.obs {
                obs.prefetch_hits.inc();
            }
        }
        match self.policy {
            EvictionPolicy::Lru => self.touch(idx),
            EvictionPolicy::Clock => self.frames[idx].referenced = true,
        }
    }

    fn on_miss(&mut self) {
        self.stats.misses += 1;
        if let Some(obs) = &self.obs {
            obs.misses.inc();
        }
    }

    /// Hands out a pinned guard on frame `idx` (called under the shard
    /// lock, so the increment is ordered before any eviction check).
    fn pin(&self, idx: usize) -> PageGuard {
        let frame = &self.frames[idx];
        frame.pins.fetch_add(1, Ordering::Relaxed);
        PageGuard {
            data: Arc::clone(&frame.data),
            pin: Some(Arc::clone(&frame.pins)),
        }
    }

    /// Selects an eviction victim, skipping pinned frames. `None` when every
    /// frame is pinned.
    fn pick_victim(&mut self) -> Option<usize> {
        match self.policy {
            EvictionPolicy::Lru => {
                // Exact LRU: the tail unless pinned, else walk towards the
                // head. Without outstanding guards this is always the tail —
                // the historical pool's choice.
                let mut idx = self.tail;
                while idx != NIL {
                    if self.frames[idx].pin_count() == 0 {
                        return Some(idx);
                    }
                    idx = self.frames[idx].prev;
                }
                None
            }
            EvictionPolicy::Clock => {
                // Two sweeps: the first clears reference bits, the second
                // must find an unreferenced unpinned frame if any frame is
                // unpinned at all.
                let n = self.frames.len();
                for _ in 0..2 * n {
                    let idx = self.hand;
                    self.hand = (self.hand + 1) % n;
                    let frame = &mut self.frames[idx];
                    if frame.pin_count() > 0 {
                        continue;
                    }
                    if frame.referenced {
                        frame.referenced = false;
                        continue;
                    }
                    return Some(idx);
                }
                None
            }
        }
    }

    /// Removes frame `victim` from the shard's bookkeeping, writing it back
    /// if dirty (with bounded retries of transient faults). The caller
    /// immediately re-fills the frame slot.
    fn evict(&mut self, victim: usize, pager: &mut Pager, retry_limit: u32) -> Result<()> {
        if self.policy == EvictionPolicy::Lru {
            self.unlink(victim);
        }
        let old = self.frames[victim].page;
        self.map.remove(&old);
        let writeback = self.frames[victim].dirty;
        if writeback {
            let mut failed = 0u32;
            loop {
                match pager.write(old, &self.frames[victim].data) {
                    Ok(()) => {
                        self.note_retry_success(failed);
                        break;
                    }
                    Err(e) => {
                        self.note_fault(true, &e);
                        if !e.is_transient() || failed >= retry_limit {
                            return Err(e);
                        }
                        failed += 1;
                    }
                }
            }
            self.stats.writebacks += 1;
            if let Some(obs) = &self.obs {
                obs.writebacks.inc();
            }
        }
        self.stats.evictions += 1;
        if let Some(obs) = &self.obs {
            obs.evictions.inc();
            obs.sink.emit(&Event::BufferEvict { writeback });
        }
        Ok(())
    }

    /// Registers a freshly installed frame with the replacement policy.
    fn link_new(&mut self, idx: usize) {
        match self.policy {
            EvictionPolicy::Lru => self.push_front(idx),
            EvictionPolicy::Clock => {
                // `Frame::new` starts with the reference bit set (second
                // chance for freshly faulted pages); nothing else to do.
            }
        }
    }

    /// Moves frame `idx` to the front (most recently used; LRU only).
    fn touch(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }

    fn push_front(&mut self, idx: usize) {
        self.frames[idx].prev = NIL;
        self.frames[idx].next = self.head;
        if self.head != NIL {
            self.frames[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.frames[idx].prev, self.frames[idx].next);
        if prev != NIL {
            self.frames[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.frames[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.frames[idx].prev = NIL;
        self.frames[idx].next = NIL;
    }

    /// Marks a frame as reusable after its page has been freed: it is made
    /// clean, tagged with the invalid page id, and (under LRU) parked at the
    /// recency tail so it becomes the next eviction victim with no
    /// write-back; under CLOCK its reference bit is cleared for the same
    /// effect.
    fn discard_frame(&mut self, idx: usize) {
        self.frames[idx].dirty = false;
        self.frames[idx].page = PageId::INVALID;
        self.frames[idx].prefetched = false;
        match self.policy {
            EvictionPolicy::Lru => {
                self.unlink(idx);
                self.push_back(idx);
            }
            EvictionPolicy::Clock => self.frames[idx].referenced = false,
        }
    }

    fn push_back(&mut self, idx: usize) {
        self.frames[idx].next = NIL;
        self.frames[idx].prev = self.tail;
        if self.tail != NIL {
            self.frames[self.tail].next = idx;
        }
        self.tail = idx;
        if self.head == NIL {
            self.head = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> (BufferPool, Vec<PageId>) {
        pool_with(frames, PoolConfig::default())
    }

    fn pool_with(frames: usize, config: PoolConfig) -> (BufferPool, Vec<PageId>) {
        let mut pager = Pager::new(8);
        let ids: Vec<PageId> = (0..10).map(|_| pager.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            pager.write(*id, &[i as u8; 8]).unwrap();
        }
        pager.reset_stats();
        (BufferPool::with_config(pager, frames, config), ids)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
        pool.read(ids[0], &mut buf).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let (pool, ids) = pool(2);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap(); // miss
        pool.read(ids[1], &mut buf).unwrap(); // miss
        pool.read(ids[0], &mut buf).unwrap(); // hit; 1 is now LRU
        pool.read(ids[2], &mut buf).unwrap(); // miss, evicts 1
        pool.read(ids[0], &mut buf).unwrap(); // still resident -> hit
        pool.read(ids[1], &mut buf).unwrap(); // evicted -> miss
        let s = pool.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 2);
        assert_eq!(s.evictions, 2);
    }

    #[test]
    fn writeback_on_eviction() {
        let (pool, ids) = pool(1);
        pool.write(ids[0], &[0xAB; 8]).unwrap();
        let mut buf = [0u8; 8];
        pool.read(ids[1], &mut buf).unwrap(); // evicts dirty page 0
        assert_eq!(pool.stats().writebacks, 1);
        pool.read(ids[0], &mut buf).unwrap(); // re-read from disk
        assert_eq!(buf, [0xAB; 8]);
    }

    #[test]
    fn flush_all_persists() {
        let (pool, ids) = pool(4);
        pool.write(ids[3], &[7; 8]).unwrap();
        pool.flush_all().unwrap();
        let mut pager = pool.into_pager().unwrap();
        let mut buf = [0u8; 8];
        pager.read(ids[3], &mut buf).unwrap();
        assert_eq!(buf, [7; 8]);
    }

    #[test]
    fn update_in_place() {
        let (pool, ids) = pool(4);
        pool.update(ids[2], |data| data[0] = 99).unwrap();
        let mut buf = [0u8; 8];
        pool.read(ids[2], &mut buf).unwrap();
        assert_eq!(buf[0], 99);
        assert_eq!(buf[1], 2);
    }

    #[test]
    fn free_drops_cached_copy() {
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        pool.free(ids[0]).unwrap();
        assert!(pool.read(ids[0], &mut buf).is_err());
        // Allocate a fresh page reusing the freed slot; must read as zeroes,
        // not the stale cached frame.
        let id = pool.allocate();
        assert_eq!(id, ids[0]);
        pool.read(id, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn capacity_one_thrashes() {
        let (pool, ids) = pool(1);
        let mut buf = [0u8; 8];
        for round in 0..3 {
            for id in &ids[..3] {
                pool.read(*id, &mut buf).unwrap();
            }
            let _ = round;
        }
        let s = pool.stats();
        assert_eq!(s.hits, 0, "no reuse distance fits in one frame");
        assert_eq!(s.misses, 9);
    }

    #[test]
    fn working_set_fits_after_warmup() {
        let (pool, ids) = pool(8);
        let mut buf = [0u8; 8];
        for _ in 0..5 {
            for id in &ids[..6] {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 6, "only cold misses");
        assert_eq!(s.hits, 24);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn obs_mirrors_stats_and_emits_evictions() {
        use sdj_obs::{ObsContext, RingRecorder};
        let ring = Arc::new(RingRecorder::new(16));
        let ctx = ObsContext::new(ring.clone() as Arc<dyn EventSink>);
        let (pool, ids) = pool(2);
        pool.attach_obs(BufferObs::new(&ctx, "buf"));
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap(); // miss
        pool.read(ids[0], &mut buf).unwrap(); // hit
        pool.write(ids[1], &[1; 8]).unwrap(); // miss, dirties ids[1]
        pool.read(ids[2], &mut buf).unwrap(); // miss, evicts clean ids[0]
        pool.read(ids[0], &mut buf).unwrap(); // miss, evicts dirty ids[1]
        let s = pool.stats();
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("buf.hits"), Some(s.hits));
        assert_eq!(snap.counter("buf.misses"), Some(s.misses));
        assert_eq!(snap.counter("buf.evictions"), Some(s.evictions));
        assert_eq!(snap.counter("buf.writebacks"), Some(s.writebacks));
        assert_eq!(s.writebacks, 1);
        let counts = ring.counts();
        assert_eq!(counts.buffer_evict, 2);
        assert_eq!(counts.writebacks, 1);
    }

    #[test]
    fn many_pages_sequential_scan() {
        // A scan over more pages than frames misses every time (LRU worst
        // case), which is the access pattern the hybrid queue's disk tier
        // must tolerate.
        let (pool, ids) = pool(4);
        let mut buf = [0u8; 8];
        for _ in 0..3 {
            for id in &ids {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 30);
    }

    // ------------------------------------------------------ fault retries

    #[test]
    fn transient_faults_retried_and_counted() {
        use crate::fault::{FaultConfig, FaultInjector};
        use sdj_obs::{ObsContext, RingRecorder};
        let ring = Arc::new(RingRecorder::new(256));
        let ctx = ObsContext::new(ring.clone() as Arc<dyn EventSink>);
        let (pool, ids) = pool(2);
        pool.attach_obs(BufferObs::new(&ctx, "buf"));
        pool.set_retry_limit(8);
        pool.set_fault_injector(Some(Arc::new(FaultInjector::new(
            FaultConfig::transient_only(99, 0.5),
        ))));
        // A scan over more pages than frames: every access is a demand miss
        // plus possible writeback, so plenty of device ops get faulted.
        let mut buf = [0u8; 8];
        for _ in 0..4 {
            for id in &ids {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        let s = pool.stats();
        assert!(s.faults > 0, "expected injected faults, got {s:?}");
        assert_eq!(
            s.retries, s.faults,
            "every transient fault retried exactly once per failure"
        );
        let snap = ctx.registry.snapshot();
        assert_eq!(snap.counter("buf.faults"), Some(s.faults));
        assert_eq!(snap.counter("buf.retries"), Some(s.retries));
        let counts = ring.counts();
        assert_eq!(counts.fault_injected, s.faults);
        assert!(counts.retry_succeeded > 0);
    }

    #[test]
    fn zero_retry_limit_surfaces_first_transient_fault() {
        use crate::fault::{FaultConfig, FaultInjector};
        let (pool, ids) = pool(2);
        pool.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 7,
            fail_read_nth: Some(1),
            ..FaultConfig::default()
        }))));
        let mut buf = [0u8; 8];
        assert_eq!(
            pool.read(ids[0], &mut buf),
            Err(crate::StorageError::Io { transient: true })
        );
        assert_eq!(pool.stats().faults, 1);
        assert_eq!(pool.stats().retries, 0);
        // The page is intact; a later read succeeds.
        pool.read(ids[0], &mut buf).unwrap();
    }

    // ------------------------------------------------ guards, shards, CLOCK

    #[test]
    fn warm_guard_reads_share_the_frame_and_copy_nothing() {
        let (pool, ids) = pool(4);
        let g1 = pool.read_guard(ids[0]).unwrap(); // miss
        let g2 = pool.read_guard(ids[0]).unwrap(); // hit
                                                   // Same frame bytes, not copies of them.
        assert_eq!(g1.as_ptr(), g2.as_ptr());
        assert_eq!(&*g1, &[0u8; 8]);
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.read_copies, 0, "guard path must not copy page bytes");
        // The copying API is the one that pays (and counts) the memcpy.
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        assert_eq!(pool.stats().read_copies, 1);
    }

    #[test]
    fn pinned_page_survives_eviction_pressure() {
        let (pool, ids) = pool(2);
        let guard = pool.read_guard(ids[0]).unwrap();
        let mut buf = [0u8; 8];
        for id in &ids[1..6] {
            pool.read(*id, &mut buf).unwrap();
        }
        // Five pages churned through the other frame; the pinned page never
        // left the pool.
        pool.read(ids[0], &mut buf).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 6, "pinned page faulted only once");
        assert_eq!(&*guard, &[0u8; 8]);
    }

    #[test]
    fn all_frames_pinned_falls_back_to_transient_reads() {
        let (pool, ids) = pool(1);
        let guard = pool.read_guard(ids[0]).unwrap();
        assert!(guard.is_pinned());
        let transient = pool.read_guard(ids[1]).unwrap();
        assert!(!transient.is_pinned());
        assert_eq!(&*transient, &[1u8; 8]);
        assert_eq!(&*guard, &[0u8; 8]);
        assert_eq!(pool.resident(), 1, "transient reads are not cached");
        assert_eq!(pool.stats().misses, 2);
        // Updates against a fully pinned shard write through.
        pool.update(ids[2], |d| d[0] = 0xEE).unwrap();
        drop(guard);
        let mut buf = [0u8; 8];
        pool.read(ids[2], &mut buf).unwrap();
        assert_eq!(buf[0], 0xEE);
    }

    #[test]
    fn writes_to_pinned_pages_keep_the_guard_snapshot() {
        let (pool, ids) = pool(4);
        let guard = pool.read_guard(ids[0]).unwrap();
        pool.write(ids[0], &[0x55; 8]).unwrap();
        // The guard still sees its acquisition-time snapshot...
        assert_eq!(&*guard, &[0u8; 8]);
        // ...while new readers see the write.
        let fresh = pool.read_guard(ids[0]).unwrap();
        assert_eq!(&*fresh, &[0x55; 8]);
    }

    #[test]
    fn sharded_pool_aggregates_shard_stats() {
        let (pool, ids) = pool_with(8, PoolConfig::sharded(4));
        assert_eq!(pool.shard_count(), 4);
        let mut buf = [0u8; 8];
        for id in &ids {
            pool.read(*id, &mut buf).unwrap();
        }
        for id in &ids {
            pool.read(*id, &mut buf).unwrap();
        }
        let total = pool.stats();
        assert_eq!(total.misses + total.hits, 20);
        assert!(total.misses >= 10, "all ten pages are cold at least once");
        let per_shard = pool.shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|s| s.accesses()).sum::<u64>(), 20);
        // Sequentially allocated pages round-robin across shards.
        assert!(per_shard.iter().all(|s| s.accesses() > 0));
    }

    #[test]
    fn clock_gives_second_chance_to_referenced_frames() {
        let (pool, ids) = pool_with(
            2,
            PoolConfig {
                shards: 1,
                eviction: EvictionPolicy::Clock,
            },
        );
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap(); // miss; ref(0)
        pool.read(ids[1], &mut buf).unwrap(); // miss; ref(1)
        pool.read(ids[0], &mut buf).unwrap(); // hit; ref(0) again
                                              // Both referenced: the hand clears both bits, comes around, and
                                              // takes the first frame — CLOCK approximates but does not equal LRU.
        pool.read(ids[2], &mut buf).unwrap(); // miss, evicts one of them
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 1));
        // Whichever survived is still a hit.
        let resident_hits_before = pool.stats().hits;
        pool.read(ids[1], &mut buf).unwrap();
        pool.read(ids[0], &mut buf).unwrap();
        let s = pool.stats();
        assert_eq!(
            s.hits,
            resident_hits_before + 1,
            "exactly one of the two old pages survived the CLOCK sweep"
        );
    }

    #[test]
    fn prefetch_converts_demand_misses_into_hits() {
        let (pool, ids) = pool(4);
        pool.prefetch(&[ids[0], ids[1]]);
        let s = pool.stats();
        assert_eq!(s.prefetch_reads, 2);
        assert_eq!(
            (s.hits, s.misses),
            (0, 0),
            "prefetch is not a demand access"
        );
        let mut buf = [0u8; 8];
        pool.read(ids[0], &mut buf).unwrap();
        pool.read(ids[1], &mut buf).unwrap();
        pool.read(ids[0], &mut buf).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 0);
        assert_eq!(s.hits, 3);
        assert_eq!(
            s.prefetch_hits, 2,
            "first demand access per prefetched page"
        );
        // Hints for resident or bogus pages are ignored.
        pool.prefetch(&[ids[0], PageId(9999)]);
        assert_eq!(pool.stats().prefetch_reads, 2);
    }

    #[test]
    fn hits_take_no_shared_lock() {
        let (pool, ids) = pool_with(8, PoolConfig::sharded(2));
        let mut buf = [0u8; 8];
        for id in &ids[..4] {
            pool.read(*id, &mut buf).unwrap();
        }
        let faults = pool.stats().shared_lock_acquisitions;
        for _ in 0..10 {
            for id in &ids[..4] {
                pool.read(*id, &mut buf).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.hits, 40);
        assert_eq!(
            s.shared_lock_acquisitions, faults,
            "warm reads must never touch the pool-wide pager lock"
        );
    }
}
