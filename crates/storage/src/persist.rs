//! Persistence: dumping the simulated disk to a real file and loading it
//! back, so indexes built in one process can be reopened in another.
//!
//! File layout (little endian):
//!
//! ```text
//! magic    8 bytes  "SDJPAGE1"
//! page_sz  u64
//! pages    u64      total page slots (live + freed)
//! per slot: present u8, then page bytes if present
//! ```

use std::io::{Read, Write};

use crate::{PageId, Pager, StorageError};

const MAGIC: &[u8; 8] = b"SDJPAGE1";

/// I/O or format error while persisting a pager.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is not a pager dump or is structurally invalid.
    Format(&'static str),
    /// A storage-layer error during reconstruction.
    Storage(StorageError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(what) => write!(f, "bad pager dump: {what}"),
            PersistError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl Pager {
    /// Writes the full disk image to `out`.
    pub fn save_to(&mut self, out: &mut impl Write) -> std::result::Result<(), PersistError> {
        out.write_all(MAGIC)?;
        out.write_all(&(self.page_size() as u64).to_le_bytes())?;
        let total = self.capacity_pages() as u64;
        out.write_all(&total.to_le_bytes())?;
        let mut buf = vec![0u8; self.page_size()];
        for slot in 0..self.capacity_pages() {
            let id = PageId(slot as u32);
            match self.read(id, &mut buf) {
                Ok(()) => {
                    out.write_all(&[1])?;
                    out.write_all(&buf)?;
                }
                Err(StorageError::FreedPage(_)) => out.write_all(&[0])?,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reconstructs a pager from a disk image written by
    /// [`Pager::save_to`]. Freed slots are restored onto the free list so
    /// id allocation continues seamlessly.
    pub fn load_from(input: &mut impl Read) -> std::result::Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("bad magic"));
        }
        let mut u64buf = [0u8; 8];
        input.read_exact(&mut u64buf)?;
        let page_size = u64::from_le_bytes(u64buf) as usize;
        if page_size == 0 || page_size > 1 << 24 {
            return Err(PersistError::Format("implausible page size"));
        }
        input.read_exact(&mut u64buf)?;
        let total = u64::from_le_bytes(u64buf) as usize;

        let mut pager = Pager::new(page_size);
        let mut freed: Vec<PageId> = Vec::new();
        let mut buf = vec![0u8; page_size];
        for slot in 0..total {
            let mut tag = [0u8; 1];
            input.read_exact(&mut tag)?;
            let id = pager.allocate();
            debug_assert_eq!(id.0 as usize, slot);
            match tag[0] {
                1 => {
                    input.read_exact(&mut buf)?;
                    pager.write(id, &buf)?;
                }
                0 => freed.push(id),
                _ => return Err(PersistError::Format("bad slot tag")),
            }
        }
        for id in freed {
            pager.free(id)?;
        }
        pager.reset_stats();
        Ok(pager)
    }
}

/// Reads exactly 8 bytes as a little-endian u64 (shared by index headers).
pub fn read_u64(input: &mut impl Read) -> std::result::Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a u64 little-endian (shared by index headers).
pub fn write_u64(out: &mut impl Write, v: u64) -> std::result::Result<(), PersistError> {
    out.write_all(&v.to_le_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_free_list() {
        let mut pager = Pager::new(32);
        let a = pager.allocate();
        let b = pager.allocate();
        let c = pager.allocate();
        pager.write(a, &[1u8; 32]).unwrap();
        pager.write(b, &[2u8; 32]).unwrap();
        pager.write(c, &[3u8; 32]).unwrap();
        pager.free(b).unwrap();

        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        let mut back = Pager::load_from(&mut bytes.as_slice()).unwrap();

        let mut buf = [0u8; 32];
        back.read(a, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 32]);
        back.read(c, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 32]);
        assert!(matches!(
            back.read(b, &mut buf),
            Err(StorageError::FreedPage(_))
        ));
        // The freed id is reused on the next allocation.
        assert_eq!(back.allocate(), b);
    }

    #[test]
    fn empty_pager_roundtrip() {
        let mut pager = Pager::new(16);
        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        let mut back = Pager::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.page_size(), 16);
        assert_eq!(back.capacity_pages(), 0);
        let id = back.allocate();
        assert_eq!(id, PageId(0));
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOTADUMPxxxxxxxxxxxxxxxx".to_vec();
        assert!(matches!(
            Pager::load_from(&mut bytes.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_dump() {
        let mut pager = Pager::new(32);
        let a = pager.allocate();
        pager.write(a, &[7u8; 32]).unwrap();
        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            Pager::load_from(&mut bytes.as_slice()),
            Err(PersistError::Io(_))
        ));
    }
}
