//! Persistence: dumping the simulated disk to a real file and loading it
//! back, so indexes built in one process can be reopened in another.
//!
//! Current file layout (little endian):
//!
//! ```text
//! magic    8 bytes  "SDJPAGE2"
//! page_sz  u64
//! pages    u64      total page slots (live + freed)
//! per slot: present u8, then crc32 u32 + page bytes if present
//! ```
//!
//! The legacy `SDJPAGE1` layout (no per-page checksum) still loads; its
//! checksums are recomputed from the page bytes on the way in.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::codec::crc32;
use crate::{PageId, Pager, StorageError};

const MAGIC_V1: &[u8; 8] = b"SDJPAGE1";
const MAGIC: &[u8; 8] = b"SDJPAGE2";

/// I/O or format error while persisting a pager.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The file is not a pager dump or is structurally invalid.
    Format(&'static str),
    /// A storage-layer error during reconstruction.
    Storage(StorageError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format(what) => write!(f, "bad pager dump: {what}"),
            PersistError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl Pager {
    /// Writes the full disk image to `out` in the current (`SDJPAGE2`,
    /// checksummed) format.
    pub fn save_to(&mut self, out: &mut impl Write) -> std::result::Result<(), PersistError> {
        out.write_all(MAGIC)?;
        out.write_all(&(self.page_size() as u64).to_le_bytes())?;
        let total = self.capacity_pages() as u64;
        out.write_all(&total.to_le_bytes())?;
        let mut buf = vec![0u8; self.page_size()];
        for slot in 0..self.capacity_pages() {
            let id = PageId(slot as u32);
            match self.read(id, &mut buf) {
                Ok(()) => {
                    out.write_all(&[1])?;
                    out.write_all(&self.page_crc(id)?.to_le_bytes())?;
                    out.write_all(&buf)?;
                }
                Err(StorageError::FreedPage(_)) => out.write_all(&[0])?,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Reconstructs a pager from a disk image written by
    /// [`Pager::save_to`]. Freed slots are restored onto the free list so
    /// id allocation continues seamlessly.
    ///
    /// Accepts both the current checksummed format (each stored checksum is
    /// verified against the page bytes) and the legacy `SDJPAGE1` format
    /// (checksums recomputed on load).
    pub fn load_from(input: &mut impl Read) -> std::result::Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        let checksummed = match &magic {
            m if m == MAGIC => true,
            m if m == MAGIC_V1 => false,
            _ => return Err(PersistError::Format("bad magic")),
        };
        let mut u64buf = [0u8; 8];
        input.read_exact(&mut u64buf)?;
        let page_size = u64::from_le_bytes(u64buf) as usize;
        if page_size == 0 || page_size > 1 << 24 {
            return Err(PersistError::Format("implausible page size"));
        }
        input.read_exact(&mut u64buf)?;
        let total = u64::from_le_bytes(u64buf) as usize;
        if total > u32::MAX as usize {
            return Err(PersistError::Format("implausible page count"));
        }

        let mut pager = Pager::new(page_size);
        let mut freed: Vec<PageId> = Vec::new();
        let mut buf = vec![0u8; page_size];
        for slot in 0..total {
            let mut tag = [0u8; 1];
            input.read_exact(&mut tag)?;
            let id = pager.allocate();
            debug_assert_eq!(id.0 as usize, slot);
            match tag[0] {
                1 => {
                    let mut stored_crc = None;
                    if checksummed {
                        let mut crcbuf = [0u8; 4];
                        input.read_exact(&mut crcbuf)?;
                        stored_crc = Some(u32::from_le_bytes(crcbuf));
                    }
                    input.read_exact(&mut buf)?;
                    if let Some(stored) = stored_crc {
                        if crc32(&buf) != stored {
                            return Err(PersistError::Storage(StorageError::Corrupt(
                                "page checksum mismatch in dump",
                            )));
                        }
                    }
                    pager.write(id, &buf)?;
                }
                0 => freed.push(id),
                _ => return Err(PersistError::Format("bad slot tag")),
            }
        }
        for id in freed {
            pager.free(id)?;
        }
        pager.reset_stats();
        Ok(pager)
    }
}

static ATOMIC_SAVE_TOKEN: AtomicU64 = AtomicU64::new(0);

/// Writes a file atomically: the payload goes to a uniquely named temp file
/// in the destination's directory, is flushed and fsynced, and is then
/// renamed over `path`. A crash mid-save leaves the previous file intact.
///
/// Shared by the R-tree and quadtree `save` paths (the `RunReport` writer
/// uses the same pattern).
pub fn save_atomic(
    path: &Path,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> std::result::Result<(), PersistError>,
) -> std::result::Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or(PersistError::Format("save path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let token = ATOMIC_SAVE_TOKEN.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(".{file_name}.tmp{}.{token:x}", std::process::id());
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let file = std::fs::File::create(&tmp_path)?;
        let mut out = std::io::BufWriter::new(file);
        write(&mut out)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp_path, path)?;
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Reads exactly 8 bytes as a little-endian u64 (shared by index headers).
pub fn read_u64(input: &mut impl Read) -> std::result::Result<u64, PersistError> {
    let mut buf = [0u8; 8];
    input.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a u64 little-endian (shared by index headers).
pub fn write_u64(out: &mut impl Write, v: u64) -> std::result::Result<(), PersistError> {
    out.write_all(&v.to_le_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pages_and_free_list() {
        let mut pager = Pager::new(32);
        let a = pager.allocate();
        let b = pager.allocate();
        let c = pager.allocate();
        pager.write(a, &[1u8; 32]).unwrap();
        pager.write(b, &[2u8; 32]).unwrap();
        pager.write(c, &[3u8; 32]).unwrap();
        pager.free(b).unwrap();

        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        let mut back = Pager::load_from(&mut bytes.as_slice()).unwrap();

        let mut buf = [0u8; 32];
        back.read(a, &mut buf).unwrap();
        assert_eq!(buf, [1u8; 32]);
        back.read(c, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 32]);
        assert!(matches!(
            back.read(b, &mut buf),
            Err(StorageError::FreedPage(_))
        ));
        // The freed id is reused on the next allocation.
        assert_eq!(back.allocate(), b);
    }

    #[test]
    fn empty_pager_roundtrip() {
        let mut pager = Pager::new(16);
        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        let mut back = Pager::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.page_size(), 16);
        assert_eq!(back.capacity_pages(), 0);
        let id = back.allocate();
        assert_eq!(id, PageId(0));
    }

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOTADUMPxxxxxxxxxxxxxxxx".to_vec();
        assert!(matches!(
            Pager::load_from(&mut bytes.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn rejects_truncated_dump() {
        let mut pager = Pager::new(32);
        let a = pager.allocate();
        pager.write(a, &[7u8; 32]).unwrap();
        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            Pager::load_from(&mut bytes.as_slice()),
            Err(PersistError::Io(_))
        ));
    }

    /// Hand-rolls a legacy (un-checksummed) dump with one live page.
    fn v1_dump(page_size: usize, payload: u8) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SDJPAGE1");
        bytes.extend_from_slice(&(page_size as u64).to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&vec![payload; page_size]);
        bytes
    }

    #[test]
    fn legacy_v1_dump_still_loads() {
        let bytes = v1_dump(32, 0xAB);
        let mut pager = Pager::load_from(&mut bytes.as_slice()).unwrap();
        let mut buf = [0u8; 32];
        pager.read(PageId(0), &mut buf).unwrap();
        assert_eq!(buf, [0xABu8; 32]);
        // Re-saving produces the current checksummed format.
        let mut resaved = Vec::new();
        pager.save_to(&mut resaved).unwrap();
        assert_eq!(&resaved[..8], b"SDJPAGE2");
    }

    #[test]
    fn v2_dump_detects_flipped_page_byte() {
        let mut pager = Pager::new(32);
        let a = pager.allocate();
        pager.write(a, &[5u8; 32]).unwrap();
        let mut bytes = Vec::new();
        pager.save_to(&mut bytes).unwrap();
        // Flip a byte inside the page payload (past magic + header + tag + crc).
        let payload_start = 8 + 8 + 8 + 1 + 4;
        bytes[payload_start + 3] ^= 0x40;
        assert!(matches!(
            Pager::load_from(&mut bytes.as_slice()),
            Err(PersistError::Storage(StorageError::Corrupt(_)))
        ));
    }

    #[test]
    fn save_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("sdj_persist_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.bin");
        std::fs::write(&path, b"old contents").unwrap();
        save_atomic(&path, |out| {
            out.write_all(b"new contents")?;
            Ok(())
        })
        .unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        // A failing writer leaves the original file untouched and no temp
        // files behind.
        let r = save_atomic(&path, |_| Err(PersistError::Format("boom")));
        assert!(r.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
