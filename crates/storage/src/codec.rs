//! Bounds-checked little-endian encoding helpers for page layouts.
//!
//! Tree nodes and spilled priority-queue buckets are flat, fixed-layout
//! structures; these cursors keep the serialization code free of index
//! arithmetic mistakes while staying allocation-free.

use crate::{Result, StorageError};

/// Lookup table for the reflected CRC-32 (IEEE 802.3, polynomial
/// `0xEDB88320`) used to checksum pages.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`. Used as the per-page checksum: computed on every
/// write, verified on every read from the simulated disk.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Copies `bytes` into a fixed-size array, reporting a corrupt page instead
/// of panicking when the length does not match.
fn fixed<const N: usize>(bytes: &[u8]) -> Result<[u8; N]> {
    let mut out = [0u8; N];
    if bytes.len() != N {
        return Err(StorageError::Corrupt("fixed-width field length mismatch"));
    }
    out.copy_from_slice(bytes);
    Ok(out)
}

/// A write cursor over a page buffer.
#[derive(Debug)]
pub struct PageWriter<'a> {
    buf: &'a mut [u8],
    pos: usize,
}

impl<'a> PageWriter<'a> {
    /// Creates a writer positioned at the start of `buf`.
    pub fn new(buf: &'a mut [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn reserve(&mut self, len: usize) -> Result<&mut [u8]> {
        if self.pos + len > self.buf.len() {
            return Err(StorageError::OutOfBounds {
                offset: self.pos,
                len,
                size: self.buf.len(),
            });
        }
        let slice = &mut self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) -> Result<()> {
        self.reserve(1)?[0] = v;
        Ok(())
    }

    /// Writes a `u16` (little endian).
    pub fn put_u16(&mut self, v: u16) -> Result<()> {
        self.reserve(2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a `u32` (little endian).
    pub fn put_u32(&mut self, v: u32) -> Result<()> {
        self.reserve(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a `u64` (little endian).
    pub fn put_u64(&mut self, v: u64) -> Result<()> {
        self.reserve(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes an `f64` (little-endian IEEE 754 bits).
    pub fn put_f64(&mut self, v: f64) -> Result<()> {
        self.reserve(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.reserve(bytes.len())?.copy_from_slice(bytes);
        Ok(())
    }

    /// Skips `len` bytes, leaving them untouched.
    pub fn skip(&mut self, len: usize) -> Result<()> {
        self.reserve(len).map(|_| ())
    }
}

/// A read cursor over a page buffer.
#[derive(Debug)]
pub struct PageReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PageReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.pos + len > self.buf.len() {
            return Err(StorageError::OutOfBounds {
                offset: self.pos,
                len,
                size: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16` (little endian).
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(fixed(self.take(2)?)?))
    }

    /// Reads a `u32` (little endian).
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(fixed(self.take(4)?)?))
    }

    /// Reads a `u64` (little endian).
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(fixed(self.take(8)?)?))
    }

    /// Reads an `f64` (little-endian IEEE 754 bits).
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(fixed(self.take(8)?)?))
    }

    /// Reads `len` raw bytes.
    pub fn get_bytes(&mut self, len: usize) -> Result<&'a [u8]> {
        self.take(len)
    }

    /// Skips `len` bytes.
    pub fn skip(&mut self, len: usize) -> Result<()> {
        self.take(len).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut buf = [0u8; 64];
        let mut w = PageWriter::new(&mut buf);
        w.put_u8(7).unwrap();
        w.put_u16(0xBEEF).unwrap();
        w.put_u32(0xDEAD_BEEF).unwrap();
        w.put_u64(0x0123_4567_89AB_CDEF).unwrap();
        w.put_f64(-1234.5678).unwrap();
        w.put_bytes(b"tag").unwrap();
        let end = w.position();

        let mut r = PageReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -1234.5678);
        assert_eq!(r.get_bytes(3).unwrap(), b"tag");
        assert_eq!(r.position(), end);
    }

    #[test]
    fn overflow_write_is_error() {
        let mut buf = [0u8; 4];
        let mut w = PageWriter::new(&mut buf);
        w.put_u32(1).unwrap();
        assert!(matches!(
            w.put_u8(1),
            Err(StorageError::OutOfBounds {
                offset: 4,
                len: 1,
                size: 4
            })
        ));
    }

    #[test]
    fn overflow_read_is_error() {
        let buf = [0u8; 4];
        let mut r = PageReader::new(&buf);
        r.get_u16().unwrap();
        assert!(r.get_u64().is_err());
        // Failed reads do not advance.
        assert_eq!(r.position(), 2);
        r.get_u16().unwrap();
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn skip_and_remaining() {
        let mut buf = [0u8; 10];
        let mut w = PageWriter::new(&mut buf);
        w.skip(6).unwrap();
        assert_eq!(w.remaining(), 4);
        w.put_u32(42).unwrap();
        let mut r = PageReader::new(&buf);
        r.skip(6).unwrap();
        assert_eq!(r.get_u32().unwrap(), 42);
    }

    #[test]
    fn crc32_known_vectors() {
        // Reference values for the IEEE polynomial.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut page = vec![0xA5u8; 256];
        let clean = crc32(&page);
        page[100] ^= 0x10;
        assert_ne!(crc32(&page), clean);
    }

    #[test]
    fn f64_bit_exactness() {
        for v in [0.0, -0.0, f64::INFINITY, f64::MIN_POSITIVE, 1.0e300] {
            let mut buf = [0u8; 8];
            PageWriter::new(&mut buf).put_f64(v).unwrap();
            let got = PageReader::new(&buf).get_f64().unwrap();
            assert_eq!(v.to_bits(), got.to_bits());
        }
    }
}
