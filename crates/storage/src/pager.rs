//! The simulated disk: a flat collection of fixed-size pages with
//! allocation, free-list reuse, and read/write accounting.

use crate::{Result, StorageError};

/// Identifier of a disk page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in on-page encodings for "no page" (e.g. the tail of a
    /// linked page list).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True if this id is the [`PageId::INVALID`] sentinel.
    #[must_use]
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }
}

/// Cumulative disk-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of page reads served.
    pub reads: u64,
    /// Number of page writes performed.
    pub writes: u64,
    /// Number of pages allocated.
    pub allocations: u64,
    /// Number of pages freed.
    pub frees: u64,
}

/// A simulated disk of fixed-size pages.
///
/// Freshly allocated pages are zero-filled (like a zeroed file extent), and
/// freed pages go on a free list for reuse, so page ids stay dense over the
/// lifetime of a workload — important for the hybrid priority queue, which
/// continuously allocates and frees bucket pages.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    free_list: Vec<PageId>,
    stats: DiskStats,
}

impl Pager {
    /// Creates an empty pager with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            free_list: Vec::new(),
            stats: DiskStats::default(),
        }
    }

    /// The page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// High-water mark of the simulated disk, in pages.
    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocates a zero-filled page, reusing a freed slot when possible.
    pub fn allocate(&mut self) -> PageId {
        self.stats.allocations += 1;
        if let Some(id) = self.free_list.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            return id;
        }
        let id = PageId(u32::try_from(self.pages.len()).expect("pager overflow"));
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        id
    }

    /// Frees a page, making its id available for reuse.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        let slot = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?;
        if slot.is_none() {
            return Err(StorageError::FreedPage(id.0));
        }
        *slot = None;
        self.free_list.push(id);
        self.stats.frees += 1;
        Ok(())
    }

    /// Reads a full page into `buf` (which must be exactly one page long).
    pub fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadBufferSize {
                expected: self.page_size,
                actual: buf.len(),
            });
        }
        let page = self
            .pages
            .get(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?
            .as_ref()
            .ok_or(StorageError::FreedPage(id.0))?;
        buf.copy_from_slice(page);
        self.stats.reads += 1;
        Ok(())
    }

    /// Writes a full page from `buf` (which must be exactly one page long).
    pub fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadBufferSize {
                expected: self.page_size,
                actual: buf.len(),
            });
        }
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?
            .as_mut()
            .ok_or(StorageError::FreedPage(id.0))?;
        page.copy_from_slice(buf);
        self.stats.writes += 1;
        Ok(())
    }

    /// Current disk counters.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets the disk counters (page contents are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut pager = Pager::new(64);
        let id = pager.allocate();
        let mut buf = vec![0u8; 64];
        pager.read(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh pages are zeroed");
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        pager.write(id, &data).unwrap();
        pager.read(id, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn free_and_reuse() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let b = pager.allocate();
        assert_ne!(a, b);
        pager.free(a).unwrap();
        assert_eq!(pager.live_pages(), 1);
        let c = pager.allocate();
        assert_eq!(c, a, "freed ids are reused");
        let mut buf = vec![0u8; 16];
        pager.read(c, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "reused pages are re-zeroed");
    }

    #[test]
    fn errors_on_bad_access() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let mut small = vec![0u8; 8];
        assert!(matches!(
            pager.read(a, &mut small),
            Err(StorageError::BadBufferSize { .. })
        ));
        assert!(matches!(
            pager.read(PageId(99), &mut [0u8; 16]),
            Err(StorageError::UnknownPage(99))
        ));
        pager.free(a).unwrap();
        assert!(matches!(
            pager.read(a, &mut [0u8; 16]),
            Err(StorageError::FreedPage(_))
        ));
        assert!(matches!(pager.free(a), Err(StorageError::FreedPage(_))));
    }

    #[test]
    fn stats_track_operations() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let b = pager.allocate();
        let buf = vec![1u8; 16];
        pager.write(a, &buf).unwrap();
        pager.write(b, &buf).unwrap();
        let mut out = vec![0u8; 16];
        pager.read(a, &mut out).unwrap();
        pager.free(b).unwrap();
        let s = pager.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.frees, 1);
        pager.reset_stats();
        assert_eq!(pager.stats(), DiskStats::default());
    }

    #[test]
    fn invalid_sentinel() {
        assert!(PageId::INVALID.is_invalid());
        assert!(!PageId(0).is_invalid());
    }
}
