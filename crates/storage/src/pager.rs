//! The simulated disk: a flat collection of fixed-size pages with
//! allocation, free-list reuse, read/write accounting, per-page CRC32
//! checksums, and an optional deterministic fault injector.

use std::sync::Arc;

use crate::codec::crc32;
use crate::fault::{FaultInjector, ReadFault, WriteFault};
use crate::{Result, StorageError};

/// Identifier of a disk page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in on-page encodings for "no page" (e.g. the tail of a
    /// linked page list).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// True if this id is the [`PageId::INVALID`] sentinel.
    #[must_use]
    pub fn is_invalid(self) -> bool {
        self == Self::INVALID
    }
}

/// Cumulative disk-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Number of page reads served.
    pub reads: u64,
    /// Number of page writes performed.
    pub writes: u64,
    /// Number of pages allocated.
    pub allocations: u64,
    /// Number of pages freed.
    pub frees: u64,
}

/// A simulated disk of fixed-size pages.
///
/// Freshly allocated pages are zero-filled (like a zeroed file extent), and
/// freed pages go on a free list for reuse, so page ids stay dense over the
/// lifetime of a workload — important for the hybrid priority queue, which
/// continuously allocates and frees bucket pages.
/// Every live page carries a CRC32 checksum maintained on write and verified
/// on read, so bit rot (or an injected bit flip / torn write) surfaces as
/// [`StorageError::Corrupt`] instead of silently wrong data.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    pages: Vec<Option<Box<[u8]>>>,
    /// Checksum sidecar, indexed like `pages`; meaningless for freed slots.
    crcs: Vec<u32>,
    /// CRC of an all-zero page, cached because every allocation needs it.
    zero_crc: u32,
    free_list: Vec<PageId>,
    stats: DiskStats,
    injector: Option<Arc<FaultInjector>>,
}

impl Pager {
    /// Creates an empty pager with the given page size.
    ///
    /// # Panics
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            page_size,
            pages: Vec::new(),
            crcs: Vec::new(),
            zero_crc: crc32(&vec![0u8; page_size]),
            free_list: Vec::new(),
            stats: DiskStats::default(),
            injector: None,
        }
    }

    /// Installs (or clears) a fault injector consulted on every subsequent
    /// read, write and fallible allocation.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<FaultInjector>>) {
        self.injector = injector;
    }

    /// The page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of live (allocated, not freed) pages.
    #[must_use]
    pub fn live_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// High-water mark of the simulated disk, in pages.
    #[must_use]
    pub fn capacity_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocates a zero-filled page, reusing a freed slot when possible.
    ///
    /// Infallible (and exempt from fault injection): index construction uses
    /// this path, while runtime consumers that can handle a full disk — the
    /// hybrid queue's spill tier — go through [`Pager::try_allocate`].
    pub fn allocate(&mut self) -> PageId {
        self.stats.allocations += 1;
        if let Some(id) = self.free_list.pop() {
            self.pages[id.0 as usize] = Some(vec![0u8; self.page_size].into_boxed_slice());
            self.crcs[id.0 as usize] = self.zero_crc;
            return id;
        }
        assert!(self.pages.len() < u32::MAX as usize, "pager overflow");
        let id = PageId(self.pages.len() as u32);
        self.pages
            .push(Some(vec![0u8; self.page_size].into_boxed_slice()));
        self.crcs.push(self.zero_crc);
        id
    }

    /// Allocates a zero-filled page, surfacing [`StorageError::DiskFull`]
    /// when the fault injector's allocation budget is exhausted.
    pub fn try_allocate(&mut self) -> Result<PageId> {
        if let Some(inj) = &self.injector {
            if inj.on_allocate() {
                return Err(StorageError::DiskFull);
            }
        }
        Ok(self.allocate())
    }

    /// Frees a page, making its id available for reuse.
    pub fn free(&mut self, id: PageId) -> Result<()> {
        let slot = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?;
        if slot.is_none() {
            return Err(StorageError::FreedPage(id.0));
        }
        *slot = None;
        self.free_list.push(id);
        self.stats.frees += 1;
        Ok(())
    }

    /// Reads a full page into `buf` (which must be exactly one page long).
    ///
    /// The stored checksum is verified before any bytes are copied out; a
    /// mismatch surfaces as [`StorageError::Corrupt`].
    pub fn read(&mut self, id: PageId, buf: &mut [u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadBufferSize {
                expected: self.page_size,
                actual: buf.len(),
            });
        }
        let fate = match &self.injector {
            Some(inj) => inj.on_read(),
            None => ReadFault::None,
        };
        if fate == ReadFault::Transient {
            return Err(StorageError::Io { transient: true });
        }
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?
            .as_mut()
            .ok_or(StorageError::FreedPage(id.0))?;
        if let ReadFault::BitFlip(bit) = fate {
            // Persistent media damage: the stored byte changes, the stored
            // checksum does not, so this (and every later) read detects it.
            let bit = (bit % (self.page_size as u64 * 8)) as usize;
            page[bit / 8] ^= 1 << (bit % 8);
        }
        if crc32(page) != self.crcs[id.0 as usize] {
            return Err(StorageError::Corrupt("page checksum mismatch"));
        }
        buf.copy_from_slice(page);
        self.stats.reads += 1;
        Ok(())
    }

    /// Writes a full page from `buf` (which must be exactly one page long),
    /// updating the page's stored checksum.
    pub fn write(&mut self, id: PageId, buf: &[u8]) -> Result<()> {
        if buf.len() != self.page_size {
            return Err(StorageError::BadBufferSize {
                expected: self.page_size,
                actual: buf.len(),
            });
        }
        let fate = match &self.injector {
            Some(inj) => inj.on_write(),
            None => WriteFault::None,
        };
        if fate == WriteFault::Transient {
            return Err(StorageError::Io { transient: true });
        }
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?
            .as_mut()
            .ok_or(StorageError::FreedPage(id.0))?;
        if fate == WriteFault::Torn {
            // Half the sectors land, the checksum stays stale: the next read
            // of this page reports `Corrupt` rather than mixed old/new data.
            let half = self.page_size / 2;
            page[..half].copy_from_slice(&buf[..half]);
            return Err(StorageError::Io { transient: false });
        }
        page.copy_from_slice(buf);
        self.crcs[id.0 as usize] = crc32(buf);
        self.stats.writes += 1;
        Ok(())
    }

    /// Stored checksum of a live page (used by the persist layer's
    /// versioned dump format).
    pub(crate) fn page_crc(&self, id: PageId) -> Result<u32> {
        let slot = self
            .pages
            .get(id.0 as usize)
            .ok_or(StorageError::UnknownPage(id.0))?;
        if slot.is_none() {
            return Err(StorageError::FreedPage(id.0));
        }
        Ok(self.crcs[id.0 as usize])
    }

    /// Current disk counters.
    #[must_use]
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    /// Resets the disk counters (page contents are unaffected).
    pub fn reset_stats(&mut self) {
        self.stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let mut pager = Pager::new(64);
        let id = pager.allocate();
        let mut buf = vec![0u8; 64];
        pager.read(id, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "fresh pages are zeroed");
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        pager.write(id, &data).unwrap();
        pager.read(id, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn free_and_reuse() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let b = pager.allocate();
        assert_ne!(a, b);
        pager.free(a).unwrap();
        assert_eq!(pager.live_pages(), 1);
        let c = pager.allocate();
        assert_eq!(c, a, "freed ids are reused");
        let mut buf = vec![0u8; 16];
        pager.read(c, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0), "reused pages are re-zeroed");
    }

    #[test]
    fn errors_on_bad_access() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let mut small = vec![0u8; 8];
        assert!(matches!(
            pager.read(a, &mut small),
            Err(StorageError::BadBufferSize { .. })
        ));
        assert!(matches!(
            pager.read(PageId(99), &mut [0u8; 16]),
            Err(StorageError::UnknownPage(99))
        ));
        pager.free(a).unwrap();
        assert!(matches!(
            pager.read(a, &mut [0u8; 16]),
            Err(StorageError::FreedPage(_))
        ));
        assert!(matches!(pager.free(a), Err(StorageError::FreedPage(_))));
    }

    #[test]
    fn stats_track_operations() {
        let mut pager = Pager::new(16);
        let a = pager.allocate();
        let b = pager.allocate();
        let buf = vec![1u8; 16];
        pager.write(a, &buf).unwrap();
        pager.write(b, &buf).unwrap();
        let mut out = vec![0u8; 16];
        pager.read(a, &mut out).unwrap();
        pager.free(b).unwrap();
        let s = pager.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.frees, 1);
        pager.reset_stats();
        assert_eq!(pager.stats(), DiskStats::default());
    }

    #[test]
    fn invalid_sentinel() {
        assert!(PageId::INVALID.is_invalid());
        assert!(!PageId(0).is_invalid());
    }

    use crate::fault::FaultConfig;

    #[test]
    fn transient_read_fault_then_success() {
        let mut pager = Pager::new(32);
        let id = pager.allocate();
        pager.write(id, &[7u8; 32]).unwrap();
        pager.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 3,
            fail_read_nth: Some(1),
            ..FaultConfig::default()
        }))));
        let mut buf = [0u8; 32];
        assert_eq!(
            pager.read(id, &mut buf),
            Err(StorageError::Io { transient: true })
        );
        pager.read(id, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 32]);
    }

    #[test]
    fn bit_flip_detected_as_corrupt() {
        let mut pager = Pager::new(32);
        let id = pager.allocate();
        pager.write(id, &[9u8; 32]).unwrap();
        pager.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 5,
            bit_flip: 1.0,
            ..FaultConfig::default()
        }))));
        let mut buf = [0u8; 32];
        assert_eq!(
            pager.read(id, &mut buf),
            Err(StorageError::Corrupt("page checksum mismatch"))
        );
        // The damage is persistent: even without further injection the page
        // stays corrupt.
        pager.set_fault_injector(None);
        assert_eq!(
            pager.read(id, &mut buf),
            Err(StorageError::Corrupt("page checksum mismatch"))
        );
    }

    #[test]
    fn torn_write_leaves_corrupt_page() {
        let mut pager = Pager::new(32);
        let id = pager.allocate();
        pager.write(id, &[1u8; 32]).unwrap();
        pager.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 5,
            torn_write: 1.0,
            ..FaultConfig::default()
        }))));
        assert_eq!(
            pager.write(id, &[2u8; 32]),
            Err(StorageError::Io { transient: false })
        );
        pager.set_fault_injector(None);
        let mut buf = [0u8; 32];
        assert_eq!(
            pager.read(id, &mut buf),
            Err(StorageError::Corrupt("page checksum mismatch"))
        );
    }

    #[test]
    fn disk_full_on_try_allocate() {
        let mut pager = Pager::new(16);
        pager.set_fault_injector(Some(Arc::new(FaultInjector::new(FaultConfig {
            seed: 1,
            disk_full_after: Some(1),
            ..FaultConfig::default()
        }))));
        pager.try_allocate().unwrap();
        assert_eq!(pager.try_allocate(), Err(StorageError::DiskFull));
        // Infallible allocation (index builds) is exempt.
        let _ = pager.allocate();
    }
}
