//! Simulated disk substrate with I/O accounting.
//!
//! The paper's evaluation (§3.1) runs on 1K-byte R*-tree pages with a 256K
//! buffer, and reports *node I/O* as one of its hardware-independent
//! performance measures. This crate reproduces that environment in-process:
//!
//! * [`Pager`] — a "disk" of fixed-size pages with read/write counters,
//! * [`BufferPool`] — a sharded page cache in front of a pager with pinned
//!   zero-copy [`PageGuard`] reads and batch [`BufferPool::prefetch`] hints;
//!   a demand buffer miss is what the experiments count as one node I/O,
//! * [`codec`] — small helpers for encoding tree nodes and spilled
//!   priority-queue entries into pages.
//!
//! The pool uses interior mutability so that read-only tree traversals (the
//! join and nearest-neighbour iterators) can fault pages in without requiring
//! `&mut` access to the index, and per-shard locking so the parallel
//! executor's workers do not serialise on warm reads.

mod buffer;
pub mod codec;
mod error;
pub mod fault;
mod pager;
pub mod persist;

pub use buffer::{BufferObs, BufferPool, EvictionPolicy, PageGuard, PoolConfig, PoolStats};
pub use error::StorageError;
pub use fault::{FaultConfig, FaultInjector};
pub use pager::{DiskStats, PageId, Pager};
pub use persist::PersistError;

/// Page size used throughout the paper's experiments (§3.1: "The size of the
/// nodes was 1K").
pub const DEFAULT_PAGE_SIZE: usize = 1024;

/// Buffer size used throughout the paper's experiments (§3.1: "256K of
/// memory used for buffers"), expressed in frames of [`DEFAULT_PAGE_SIZE`].
pub const DEFAULT_BUFFER_FRAMES: usize = 256;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
