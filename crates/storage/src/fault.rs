//! Deterministic fault injection for the simulated disk.
//!
//! A [`FaultInjector`] sits inside the [`Pager`](crate::Pager) and decides,
//! per physical operation, whether to fail it and how. Schedules are fully
//! deterministic: the same [`FaultConfig`] (including its `seed`) against the
//! same sequence of pager operations injects the same faults, which is what
//! makes chaos-test failures reproducible from a single seed.
//!
//! Supported fault classes, mirroring what a real device can do to the
//! hybrid queue's spill tier and the buffered tree nodes:
//!
//! * fail exactly the Nth read or write with a transient [`StorageError::Io`],
//! * probabilistic transient `Io` errors on reads and/or writes,
//! * disk-full on allocation once a budget of pages has been spent,
//! * bit-flip corruption: damage one stored bit so the page checksum no
//!   longer matches (surfaces as [`StorageError::Corrupt`] on the next read),
//! * torn write: persist only the first half of a write, then fail it with a
//!   non-transient `Io` error, leaving a checksum-invalid page behind.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::StorageError;

/// Declarative fault schedule. All probabilities are in `[0, 1]`; a value of
/// zero disables that fault class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed for the injector's private RNG. Two injectors with equal configs
    /// make identical decisions for identical operation sequences.
    pub seed: u64,
    /// Probability that a read fails with a transient `Io` fault.
    pub read_transient: f64,
    /// Probability that a write fails with a transient `Io` fault.
    pub write_transient: f64,
    /// Probability that a read flips one stored bit of the page before the
    /// checksum is verified (detected corruption).
    pub bit_flip: f64,
    /// Probability that a write is torn: the first half of the buffer is
    /// persisted, the checksum is left stale, and the write fails with a
    /// non-transient `Io` fault.
    pub torn_write: f64,
    /// Fail every fallible allocation after this many have succeeded.
    pub disk_full_after: Option<u64>,
    /// Fail exactly the Nth read (1-based) with a transient `Io` fault.
    pub fail_read_nth: Option<u64>,
    /// Fail exactly the Nth write (1-based) with a transient `Io` fault.
    pub fail_write_nth: Option<u64>,
}

impl FaultConfig {
    /// A schedule that only ever injects transient faults, at rate `p` on
    /// both reads and writes. Runs under this schedule with retries enabled
    /// should complete successfully.
    pub fn transient_only(seed: u64, p: f64) -> Self {
        FaultConfig {
            seed,
            read_transient: p,
            write_transient: p,
            ..FaultConfig::default()
        }
    }
}

/// What the injector decided for a read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadFault {
    None,
    /// Fail with `Io { transient: true }` without touching the page.
    Transient,
    /// Flip the given bit offset (modulo page bits) in the stored page.
    BitFlip(u64),
}

/// What the injector decided for a write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    None,
    /// Fail with `Io { transient: true }` without touching the page.
    Transient,
    /// Persist only the first half of the buffer and fail with a
    /// non-transient `Io` fault.
    Torn,
}

#[derive(Debug)]
struct InjectorState {
    rng: u64,
    reads: u64,
    writes: u64,
    allocs: u64,
}

/// Seeded, thread-safe fault decision source. Shared with the pager via
/// `Arc`; the caller keeps a handle to read the injection counters after a
/// run.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    state: Mutex<InjectorState>,
    injected: AtomicU64,
}

impl FaultInjector {
    pub fn new(config: FaultConfig) -> Self {
        // xorshift has a fixed point at zero; displace it deterministically.
        let seed = if config.seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            config.seed
        };
        FaultInjector {
            config,
            state: Mutex::new(InjectorState {
                rng: seed,
                reads: 0,
                writes: 0,
                allocs: 0,
            }),
            injected: AtomicU64::new(0),
        }
    }

    /// Total number of faults injected so far, across all classes.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The schedule this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn record(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Decide the fate of the next read.
    pub fn on_read(&self) -> ReadFault {
        let mut s = self.lock();
        s.reads += 1;
        if self.config.fail_read_nth == Some(s.reads) {
            drop(s);
            self.record();
            return ReadFault::Transient;
        }
        if chance(&mut s.rng, self.config.bit_flip) {
            let bit = next(&mut s.rng);
            drop(s);
            self.record();
            return ReadFault::BitFlip(bit);
        }
        if chance(&mut s.rng, self.config.read_transient) {
            drop(s);
            self.record();
            return ReadFault::Transient;
        }
        ReadFault::None
    }

    /// Decide the fate of the next write.
    pub fn on_write(&self) -> WriteFault {
        let mut s = self.lock();
        s.writes += 1;
        if self.config.fail_write_nth == Some(s.writes) {
            drop(s);
            self.record();
            return WriteFault::Transient;
        }
        if chance(&mut s.rng, self.config.torn_write) {
            drop(s);
            self.record();
            return WriteFault::Torn;
        }
        if chance(&mut s.rng, self.config.write_transient) {
            drop(s);
            self.record();
            return WriteFault::Transient;
        }
        WriteFault::None
    }

    /// Whether the next fallible allocation should fail with `DiskFull`.
    pub fn on_allocate(&self) -> bool {
        let Some(budget) = self.config.disk_full_after else {
            return false;
        };
        let mut s = self.lock();
        s.allocs += 1;
        if s.allocs > budget {
            drop(s);
            self.record();
            true
        } else {
            false
        }
    }

    /// The error a transient fault surfaces as.
    pub fn transient_error() -> StorageError {
        StorageError::Io { transient: true }
    }
}

/// xorshift64* step.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn chance(rng: &mut u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    // 53 uniform bits → [0, 1) double, the usual ldexp construction.
    let u = (next(rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let cfg = FaultConfig {
            seed: 7,
            read_transient: 0.3,
            write_transient: 0.2,
            bit_flip: 0.1,
            ..FaultConfig::default()
        };
        let a = FaultInjector::new(cfg.clone());
        let b = FaultInjector::new(cfg);
        for _ in 0..200 {
            assert_eq!(a.on_read(), b.on_read());
            assert_eq!(a.on_write(), b.on_write());
        }
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn nth_read_fails_exactly_once() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            fail_read_nth: Some(3),
            ..FaultConfig::default()
        });
        let fates: Vec<_> = (0..5).map(|_| inj.on_read()).collect();
        assert_eq!(fates[2], ReadFault::Transient);
        assert!(fates
            .iter()
            .enumerate()
            .all(|(i, f)| i == 2 || *f == ReadFault::None));
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn disk_full_after_budget() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 1,
            disk_full_after: Some(2),
            ..FaultConfig::default()
        });
        assert!(!inj.on_allocate());
        assert!(!inj.on_allocate());
        assert!(inj.on_allocate());
        assert!(inj.on_allocate());
    }

    #[test]
    fn zero_seed_still_varies() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 0,
            read_transient: 0.5,
            ..FaultConfig::default()
        });
        let fates: Vec<_> = (0..64).map(|_| inj.on_read()).collect();
        assert!(fates.contains(&ReadFault::Transient));
        assert!(fates.contains(&ReadFault::None));
    }

    #[test]
    fn probability_extremes() {
        let mut rng = 42u64;
        assert!(!chance(&mut rng, 0.0));
        assert!(chance(&mut rng, 1.0));
    }
}
