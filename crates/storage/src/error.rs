//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the pager, buffer pool and page codecs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referred to a page that was never allocated or is out of
    /// bounds.
    UnknownPage(u32),
    /// A page id referred to a page that has been freed.
    FreedPage(u32),
    /// A read or write buffer did not match the pager's page size.
    BadBufferSize { expected: usize, actual: usize },
    /// A codec read ran past the end of a page, or encoded data did not fit.
    OutOfBounds {
        offset: usize,
        len: usize,
        size: usize,
    },
    /// Decoded bytes were structurally invalid.
    Corrupt(&'static str),
    /// A simulated device-level I/O failure. Transient faults may succeed on
    /// retry; non-transient ones (e.g. a torn write) will not.
    Io { transient: bool },
    /// The simulated disk ran out of space while allocating a page.
    DiskFull,
    /// A bounded in-memory structure (e.g. the pair-slab arena or a
    /// per-session queue budget) ran out of capacity. Permanent for the
    /// query that hit it; the process stays up.
    ResourceExhausted(&'static str),
}

impl StorageError {
    /// Whether retrying the failed operation could plausibly succeed.
    ///
    /// Only device-level faults explicitly marked transient qualify; logical
    /// errors (unknown/freed pages, corruption, disk-full) are permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Io { transient: true })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownPage(id) => write!(f, "unknown page id {id}"),
            StorageError::FreedPage(id) => write!(f, "page {id} has been freed"),
            StorageError::BadBufferSize { expected, actual } => {
                write!(
                    f,
                    "buffer size {actual} does not match page size {expected}"
                )
            }
            StorageError::OutOfBounds { offset, len, size } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds page size {size}"
            ),
            StorageError::Corrupt(what) => write!(f, "corrupt page data: {what}"),
            StorageError::Io { transient: true } => write!(f, "transient i/o fault"),
            StorageError::Io { transient: false } => write!(f, "i/o fault"),
            StorageError::DiskFull => write!(f, "disk full"),
            StorageError::ResourceExhausted(what) => {
                write!(f, "resource exhausted: {what}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StorageError::UnknownPage(7).to_string(),
            "unknown page id 7"
        );
        assert!(StorageError::BadBufferSize {
            expected: 1024,
            actual: 10
        }
        .to_string()
        .contains("1024"));
        assert!(StorageError::OutOfBounds {
            offset: 1020,
            len: 8,
            size: 1024
        }
        .to_string()
        .contains("1020"));
        assert!(StorageError::Corrupt("bad tag")
            .to_string()
            .contains("bad tag"));
        assert_eq!(
            StorageError::Io { transient: true }.to_string(),
            "transient i/o fault"
        );
        assert_eq!(StorageError::DiskFull.to_string(), "disk full");
        assert!(StorageError::ResourceExhausted("arena slots")
            .to_string()
            .contains("arena slots"));
    }

    #[test]
    fn transience() {
        assert!(StorageError::Io { transient: true }.is_transient());
        assert!(!StorageError::Io { transient: false }.is_transient());
        assert!(!StorageError::DiskFull.is_transient());
        assert!(!StorageError::Corrupt("x").is_transient());
        assert!(!StorageError::UnknownPage(0).is_transient());
        assert!(!StorageError::ResourceExhausted("x").is_transient());
    }
}
