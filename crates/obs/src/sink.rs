//! Event sinks: where typed [`Event`]s go.
//!
//! A sink is shared by every component of a run (`Arc<dyn EventSink>`), so
//! implementations must be `Send + Sync` and cheap under concurrent emit.
//! The provided sinks are intentionally simple: a no-op used to measure
//! instrumentation overhead, a bounded in-memory ring for post-mortem
//! inspection, an NDJSON line writer for durable logs, and a tee.

use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::{Event, Tier};

/// Destination for instrumentation events.
pub trait EventSink: Send + Sync {
    /// Accepts one event. Must not panic; should be cheap.
    fn emit(&self, event: &Event);

    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// Discards every event. The baseline for the <2% overhead budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl EventSink for NoopSink {
    fn emit(&self, _event: &Event) {}
}

/// Per-variant event tallies, including tier-migration element sums keyed
/// by direction. Two recorders that saw equivalent streams compare equal —
/// the replay-equality property the pqueue tests assert.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `PairPopped` events seen.
    pub pair_popped: u64,
    /// `NodeExpanded` events seen.
    pub node_expanded: u64,
    /// `ResultReported` events seen.
    pub result_reported: u64,
    /// `QueueSampled` events seen.
    pub queue_sampled: u64,
    /// `TierMigration` events seen.
    pub tier_migration: u64,
    /// `BufferEvict` events seen.
    pub buffer_evict: u64,
    /// `BoundTightened` events seen.
    pub bound_tightened: u64,
    /// `WorkerFinished` events seen.
    pub worker_finished: u64,
    /// `FaultInjected` events seen.
    pub fault_injected: u64,
    /// `RetrySucceeded` events seen.
    pub retry_succeeded: u64,
    /// `PlanChosen` events seen.
    pub plan_chosen: u64,
    /// `Replanned` events seen.
    pub replanned: u64,
    /// `SessionOpened` / `SessionBatch` / `SessionClosed` events seen.
    pub session: u64,
    /// Elements that migrated into the disk tier (spills).
    pub elems_to_disk: u64,
    /// Elements that migrated out of the disk tier (bucket reloads).
    pub elems_from_disk: u64,
    /// Elements promoted into the heap tier.
    pub elems_to_heap: u64,
    /// Buffer evictions that required a writeback.
    pub writebacks: u64,
}

impl EventCounts {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::PairPopped { .. } => self.pair_popped += 1,
            Event::NodeExpanded { .. } => self.node_expanded += 1,
            Event::ResultReported { .. } => self.result_reported += 1,
            Event::QueueSampled { .. } => self.queue_sampled += 1,
            Event::TierMigration { from, to, n } => {
                self.tier_migration += 1;
                if to == Tier::Disk {
                    self.elems_to_disk += u64::from(n);
                }
                if from == Tier::Disk {
                    self.elems_from_disk += u64::from(n);
                }
                if to == Tier::Heap {
                    self.elems_to_heap += u64::from(n);
                }
            }
            Event::BufferEvict { writeback } => {
                self.buffer_evict += 1;
                if writeback {
                    self.writebacks += 1;
                }
            }
            Event::BoundTightened { .. } => self.bound_tightened += 1,
            Event::WorkerFinished { .. } => self.worker_finished += 1,
            Event::FaultInjected { .. } => self.fault_injected += 1,
            Event::RetrySucceeded { .. } => self.retry_succeeded += 1,
            Event::PlanChosen { .. } => self.plan_chosen += 1,
            Event::Replanned { .. } => self.replanned += 1,
            Event::SessionOpened { .. }
            | Event::SessionBatch { .. }
            | Event::SessionClosed { .. } => self.session += 1,
        }
    }

    /// Total events recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pair_popped
            + self.node_expanded
            + self.result_reported
            + self.queue_sampled
            + self.tier_migration
            + self.buffer_evict
            + self.bound_tightened
            + self.worker_finished
            + self.fault_injected
            + self.retry_succeeded
            + self.plan_chosen
            + self.replanned
            + self.session
    }
}

struct RingInner {
    buf: VecDeque<Event>,
    counts: EventCounts,
    dropped: u64,
}

/// Bounded in-memory recorder: keeps the last `capacity` events verbatim
/// and exact per-variant counts for the whole stream.
pub struct RingRecorder {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity),
                counts: EventCounts::default(),
                dropped: 0,
            }),
        }
    }

    /// Snapshot of the retained tail of the event stream, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let inner = self.inner.lock().unwrap();
        inner.buf.iter().copied().collect()
    }

    /// Exact per-variant counts over the *entire* stream (not just the
    /// retained tail).
    #[must_use]
    pub fn counts(&self) -> EventCounts {
        self.inner.lock().unwrap().counts
    }

    /// Events evicted from the ring because the stream outgrew `capacity`.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl EventSink for RingRecorder {
    fn emit(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        inner.counts.record(event);
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(*event);
    }
}

/// Writes one NDJSON line per event to any `Write` destination.
///
/// Lines are rendered outside the lock into a reused-per-call buffer and
/// written whole, so concurrent emitters never interleave within a line.
pub struct NdjsonWriter {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
    lines: AtomicU64,
    errors: AtomicU64,
}

impl NdjsonWriter {
    /// Wraps an arbitrary writer (file, `Vec<u8>` via `Cursor`, pipe ...).
    #[must_use]
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        Self {
            out: Mutex::new(BufWriter::new(w)),
            lines: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and writes events to it.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(f)))
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Write errors swallowed so far (emit must not panic).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl EventSink for NdjsonWriter {
    fn emit(&self, event: &Event) {
        let mut line = String::with_capacity(96);
        event.write_ndjson(&mut line);
        line.push('\n');
        let mut out = self.out.lock().unwrap();
        if out.write_all(line.as_bytes()).is_ok() {
            self.lines.fetch_add(1, Ordering::Relaxed);
        } else {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.out.lock().unwrap().flush().is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for NdjsonWriter {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// Duplicates every event to two sinks (e.g. a ring for inspection plus an
/// NDJSON log for durability).
pub struct TeeSink<A: EventSink, B: EventSink> {
    a: A,
    b: B,
}

impl<A: EventSink, B: EventSink> TeeSink<A, B> {
    /// Tees events to `a` then `b`.
    #[must_use]
    pub fn new(a: A, b: B) -> Self {
        Self { a, b }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: EventSink, B: EventSink> EventSink for TeeSink<A, B> {
    fn emit(&self, event: &Event) {
        self.a.emit(event);
        self.b.emit(event);
    }

    fn flush(&self) {
        self.a.flush();
        self.b.flush();
    }
}

// Arcs of sinks are sinks, so `Arc<RingRecorder>` can both be handed to a
// join (as `Arc<dyn EventSink>`) and kept for inspection afterwards.
impl<S: EventSink + ?Sized> EventSink for std::sync::Arc<S> {
    fn emit(&self, event: &Event) {
        (**self).emit(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PairKind;
    use std::sync::Arc;

    fn popped(dist: f64) -> Event {
        Event::PairPopped {
            kind: PairKind::NodeNode,
            dist,
        }
    }

    #[test]
    fn ring_keeps_tail_and_exact_counts() {
        let ring = RingRecorder::new(3);
        for i in 0..5 {
            ring.emit(&popped(i as f64));
        }
        ring.emit(&Event::BufferEvict { writeback: true });
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2], Event::BufferEvict { writeback: true });
        let counts = ring.counts();
        assert_eq!(counts.pair_popped, 5);
        assert_eq!(counts.buffer_evict, 1);
        assert_eq!(counts.writebacks, 1);
        assert_eq!(counts.total(), 6);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn counts_track_tier_element_sums() {
        let ring = RingRecorder::new(8);
        ring.emit(&Event::TierMigration {
            from: Tier::List,
            to: Tier::Disk,
            n: 4,
        });
        ring.emit(&Event::TierMigration {
            from: Tier::Disk,
            to: Tier::List,
            n: 10,
        });
        ring.emit(&Event::TierMigration {
            from: Tier::List,
            to: Tier::Heap,
            n: 6,
        });
        let c = ring.counts();
        assert_eq!(c.tier_migration, 3);
        assert_eq!(c.elems_to_disk, 4);
        assert_eq!(c.elems_from_disk, 10);
        assert_eq!(c.elems_to_heap, 6);
    }

    #[test]
    fn ndjson_writer_emits_parseable_lines() {
        use std::sync::Mutex as StdMutex;

        #[derive(Clone, Default)]
        struct Shared(Arc<StdMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let w = NdjsonWriter::new(Box::new(shared.clone()));
        let sent = [popped(1.0), Event::BufferEvict { writeback: false }];
        for e in &sent {
            w.emit(e);
        }
        w.flush();
        assert_eq!(w.lines_written(), 2);
        assert_eq!(w.write_errors(), 0);

        let bytes = shared.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let parsed: Vec<Event> = text.lines().filter_map(Event::parse_ndjson).collect();
        assert_eq!(parsed, sent);
    }

    #[test]
    fn tee_duplicates_and_arc_is_a_sink() {
        let a = Arc::new(RingRecorder::new(4));
        let b = Arc::new(RingRecorder::new(4));
        let tee = TeeSink::new(Arc::clone(&a), Arc::clone(&b));
        let dynamic: Arc<dyn EventSink> = Arc::new(tee);
        dynamic.emit(&popped(2.5));
        assert_eq!(a.counts().pair_popped, 1);
        assert_eq!(b.counts().pair_popped, 1);
    }
}
