//! The typed event taxonomy emitted by instrumented components.
//!
//! Events are small `Copy` records so emitting one costs a match and a few
//! stores, never an allocation. Each event serialises to one NDJSON line
//! (`{"e":"<name>", ...}`) and parses back losslessly, so a recorded stream
//! can be replayed through any [`crate::EventSink`] — the replay property
//! the tier-migration tests rely on.

use crate::json::{escape_into, JsonValue};

/// Which sides of a queued pair are index nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Both items are nodes.
    NodeNode,
    /// First item a node, second an object.
    NodeObject,
    /// First item an object, second a node.
    ObjectNode,
    /// Both items are objects (bounding rectangles or exact).
    ObjectObject,
}

impl PairKind {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PairKind::NodeNode => "node_node",
            PairKind::NodeObject => "node_object",
            PairKind::ObjectNode => "object_node",
            PairKind::ObjectObject => "object_object",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "node_node" => PairKind::NodeNode,
            "node_object" => PairKind::NodeObject,
            "object_node" => PairKind::ObjectNode,
            "object_object" => PairKind::ObjectObject,
            _ => return None,
        })
    }
}

/// Which relation a node expansion opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The first relation's node was expanded.
    First,
    /// The second relation's node was expanded.
    Second,
    /// Both nodes were opened simultaneously (§2.2.2 plane sweep).
    Both,
}

impl Side {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Side::First => "first",
            Side::Second => "second",
            Side::Both => "both",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "first" => Side::First,
            "second" => Side::Second,
            "both" => Side::Both,
            _ => return None,
        })
    }
}

/// One tier of the hybrid memory/disk priority queue (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The in-memory pairing heap (distances below `D1`).
    Heap,
    /// The unorganised in-memory window list (`[D1, D2)`).
    List,
    /// The paged disk buckets (`D2` and beyond).
    Disk,
}

impl Tier {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Heap => "heap",
            Tier::List => "list",
            Tier::Disk => "disk",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "heap" => Tier::Heap,
            "list" => Tier::List,
            "disk" => Tier::Disk,
            _ => return None,
        })
    }
}

/// An execution path the cost-based planner can select.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlanPath {
    /// The incremental priority-queue join.
    Incremental,
    /// The bulk partition/plane-sweep join.
    Bulk,
    /// Adaptive: start incremental, hand off to a frontier-seeded bulk run
    /// if mid-run re-costing says so.
    Adaptive,
}

impl PlanPath {
    /// Stable wire name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlanPath::Incremental => "incremental",
            PlanPath::Bulk => "bulk",
            PlanPath::Adaptive => "adaptive",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "incremental" => PlanPath::Incremental,
            "bulk" => PlanPath::Bulk,
            "adaptive" => PlanPath::Adaptive,
            _ => return None,
        })
    }
}

/// One instrumentation event. All payloads are `Copy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A pair left the priority queue (high-frequency; detail mode only).
    PairPopped {
        /// Node/object shape of the pair.
        kind: PairKind,
        /// The pair's key distance.
        dist: f64,
    },
    /// An index node was opened and its entries paired (detail mode only).
    NodeExpanded {
        /// Which relation's node (or both).
        side: Side,
        /// Number of child entries considered.
        children: u32,
    },
    /// A result pair was reported to the consumer.
    ResultReported {
        /// 1-based rank of the result in emission order.
        rank: u64,
        /// Its reported distance.
        dist: f64,
    },
    /// Periodic queue-depth sample (the Figure 6 time series).
    QueueSampled {
        /// Pops performed so far.
        pops: u64,
        /// Current queue length.
        len: u64,
        /// Results reported so far.
        results: u64,
    },
    /// Elements moved between tiers of the hybrid queue. A spill at
    /// insertion time is reported as `List -> Disk` (the element left the
    /// in-memory window for disk without ever being stored in the list).
    TierMigration {
        /// Tier the elements left.
        from: Tier,
        /// Tier the elements entered.
        to: Tier,
        /// Number of elements that moved.
        n: u32,
    },
    /// The buffer pool evicted a frame.
    BufferEvict {
        /// True if the victim was dirty and had to be written back.
        writeback: bool,
    },
    /// A maximum-distance bound tightened (estimator progress, or a worker
    /// publishing to the shared cross-worker bound).
    BoundTightened {
        /// Worker id (0 = the serial engine / partitioner).
        worker: u32,
        /// The new, tighter bound.
        bound: f64,
    },
    /// A parallel worker's result stream finished.
    WorkerFinished {
        /// Worker id (1-based; 0 is the partitioner).
        worker: u32,
        /// Results the worker emitted.
        results: u64,
    },
    /// A storage operation failed under the buffer pool (injected or real).
    FaultInjected {
        /// True for a write-side fault, false for a read-side one.
        write: bool,
        /// Whether the fault was transient (retryable).
        transient: bool,
    },
    /// A storage operation succeeded after one or more retries of a
    /// transient fault.
    RetrySucceeded {
        /// Number of failed attempts before the success.
        retries: u32,
    },
    /// The cost-based planner selected an execution path for a run.
    PlanChosen {
        /// The path that will execute.
        path: PlanPath,
        /// True when an override forced the path instead of the cost model.
        forced: bool,
        /// The model's incremental-path cost estimate (work units).
        est_incremental: f64,
        /// The model's bulk-path cost estimate (work units).
        est_bulk: f64,
    },
    /// An adaptive run re-evaluated the cost model mid-query and switched
    /// execution paths, handing the exported frontier to the new one.
    Replanned {
        /// The path the run started on.
        from: PlanPath,
        /// The path the remainder executes on.
        to: PlanPath,
        /// Queue pops performed when the switch fired.
        at_pop: u64,
        /// Result pairs already emitted when the switch fired.
        at_pair: u64,
        /// Re-costed remaining work of staying on `from` (work units).
        est_incremental_remaining: f64,
        /// Re-costed work of switching to `to` (work units).
        est_bulk_remaining: f64,
    },
    /// A cursor session was admitted by the join service and its engine
    /// built on the planner-chosen path.
    SessionOpened {
        /// Service-assigned session id.
        session: u32,
        /// The execution path the session's engine runs on.
        path: PlanPath,
    },
    /// A session's `next_batch` pull completed.
    SessionBatch {
        /// Service-assigned session id.
        session: u32,
        /// Results delivered by this batch.
        results: u64,
        /// Cumulative results the session has emitted.
        total: u64,
    },
    /// A session ended: its stream finished, it failed, or it was cancelled
    /// (frontier dropped, pins and slab references released).
    SessionClosed {
        /// Service-assigned session id.
        session: u32,
        /// Cumulative results the session emitted.
        results: u64,
        /// True when the session was cancelled before exhausting its stream.
        cancelled: bool,
    },
}

/// Formats an `f64` for NDJSON: finite values as shortest-roundtrip Rust
/// float syntax, non-finite as quoted strings (JSON has no infinities).
fn fmt_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Ensure a decimal point or exponent so the value parses as a float.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else if v.is_nan() {
        out.push_str("\"nan\"");
    } else if v > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn parse_f64(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(n) => Some(*n),
        JsonValue::Str(s) => match s.as_str() {
            "nan" => Some(f64::NAN),
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        _ => None,
    }
}

impl Event {
    /// Stable wire name of the event type.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Event::PairPopped { .. } => "pair_popped",
            Event::NodeExpanded { .. } => "node_expanded",
            Event::ResultReported { .. } => "result_reported",
            Event::QueueSampled { .. } => "queue_sampled",
            Event::TierMigration { .. } => "tier_migration",
            Event::BufferEvict { .. } => "buffer_evict",
            Event::BoundTightened { .. } => "bound_tightened",
            Event::WorkerFinished { .. } => "worker_finished",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RetrySucceeded { .. } => "retry_succeeded",
            Event::PlanChosen { .. } => "plan_chosen",
            Event::Replanned { .. } => "replanned",
            Event::SessionOpened { .. } => "session_opened",
            Event::SessionBatch { .. } => "session_batch",
            Event::SessionClosed { .. } => "session_closed",
        }
    }

    /// Appends the event as one NDJSON object (no trailing newline).
    pub fn write_ndjson(&self, out: &mut String) {
        out.push_str("{\"e\":\"");
        out.push_str(self.name());
        out.push('"');
        match *self {
            Event::PairPopped { kind, dist } => {
                out.push_str(",\"kind\":\"");
                out.push_str(kind.name());
                out.push_str("\",\"dist\":");
                fmt_f64(out, dist);
            }
            Event::NodeExpanded { side, children } => {
                out.push_str(",\"side\":\"");
                out.push_str(side.name());
                out.push_str("\",\"children\":");
                out.push_str(&children.to_string());
            }
            Event::ResultReported { rank, dist } => {
                out.push_str(",\"rank\":");
                out.push_str(&rank.to_string());
                out.push_str(",\"dist\":");
                fmt_f64(out, dist);
            }
            Event::QueueSampled { pops, len, results } => {
                out.push_str(",\"pops\":");
                out.push_str(&pops.to_string());
                out.push_str(",\"len\":");
                out.push_str(&len.to_string());
                out.push_str(",\"results\":");
                out.push_str(&results.to_string());
            }
            Event::TierMigration { from, to, n } => {
                out.push_str(",\"from\":\"");
                out.push_str(from.name());
                out.push_str("\",\"to\":\"");
                out.push_str(to.name());
                out.push_str("\",\"n\":");
                out.push_str(&n.to_string());
            }
            Event::BufferEvict { writeback } => {
                out.push_str(",\"writeback\":");
                out.push_str(if writeback { "true" } else { "false" });
            }
            Event::BoundTightened { worker, bound } => {
                out.push_str(",\"worker\":");
                out.push_str(&worker.to_string());
                out.push_str(",\"bound\":");
                fmt_f64(out, bound);
            }
            Event::WorkerFinished { worker, results } => {
                out.push_str(",\"worker\":");
                out.push_str(&worker.to_string());
                out.push_str(",\"results\":");
                out.push_str(&results.to_string());
            }
            Event::FaultInjected { write, transient } => {
                out.push_str(",\"write\":");
                out.push_str(if write { "true" } else { "false" });
                out.push_str(",\"transient\":");
                out.push_str(if transient { "true" } else { "false" });
            }
            Event::RetrySucceeded { retries } => {
                out.push_str(",\"retries\":");
                out.push_str(&retries.to_string());
            }
            Event::PlanChosen {
                path,
                forced,
                est_incremental,
                est_bulk,
            } => {
                out.push_str(",\"path\":\"");
                out.push_str(path.name());
                out.push_str("\",\"forced\":");
                out.push_str(if forced { "true" } else { "false" });
                out.push_str(",\"est_incremental\":");
                fmt_f64(out, est_incremental);
                out.push_str(",\"est_bulk\":");
                fmt_f64(out, est_bulk);
            }
            Event::Replanned {
                from,
                to,
                at_pop,
                at_pair,
                est_incremental_remaining,
                est_bulk_remaining,
            } => {
                out.push_str(",\"from\":\"");
                out.push_str(from.name());
                out.push_str("\",\"to\":\"");
                out.push_str(to.name());
                out.push_str("\",\"at_pop\":");
                out.push_str(&at_pop.to_string());
                out.push_str(",\"at_pair\":");
                out.push_str(&at_pair.to_string());
                out.push_str(",\"est_incremental_remaining\":");
                fmt_f64(out, est_incremental_remaining);
                out.push_str(",\"est_bulk_remaining\":");
                fmt_f64(out, est_bulk_remaining);
            }
            Event::SessionOpened { session, path } => {
                out.push_str(",\"session\":");
                out.push_str(&session.to_string());
                out.push_str(",\"path\":\"");
                out.push_str(path.name());
                out.push('"');
            }
            Event::SessionBatch {
                session,
                results,
                total,
            } => {
                out.push_str(",\"session\":");
                out.push_str(&session.to_string());
                out.push_str(",\"results\":");
                out.push_str(&results.to_string());
                out.push_str(",\"total\":");
                out.push_str(&total.to_string());
            }
            Event::SessionClosed {
                session,
                results,
                cancelled,
            } => {
                out.push_str(",\"session\":");
                out.push_str(&session.to_string());
                out.push_str(",\"results\":");
                out.push_str(&results.to_string());
                out.push_str(",\"cancelled\":");
                out.push_str(if cancelled { "true" } else { "false" });
            }
        }
        out.push('}');
    }

    /// Renders the event as one NDJSON line (with trailing newline).
    #[must_use]
    pub fn to_ndjson(&self) -> String {
        let mut s = String::with_capacity(64);
        self.write_ndjson(&mut s);
        s.push('\n');
        s
    }

    /// Parses one NDJSON line produced by [`Event::write_ndjson`].
    /// Returns `None` for malformed lines or unknown event types.
    #[must_use]
    pub fn parse_ndjson(line: &str) -> Option<Event> {
        let v = JsonValue::parse(line).ok()?;
        let name = v.get("e")?.as_str()?;
        let num = |k: &str| v.get(k).and_then(JsonValue::as_f64);
        let int = |k: &str| num(k).map(|f| f as u64);
        Some(match name {
            "pair_popped" => Event::PairPopped {
                kind: PairKind::parse(v.get("kind")?.as_str()?)?,
                dist: parse_f64(v.get("dist")?)?,
            },
            "node_expanded" => Event::NodeExpanded {
                side: Side::parse(v.get("side")?.as_str()?)?,
                children: int("children")? as u32,
            },
            "result_reported" => Event::ResultReported {
                rank: int("rank")?,
                dist: parse_f64(v.get("dist")?)?,
            },
            "queue_sampled" => Event::QueueSampled {
                pops: int("pops")?,
                len: int("len")?,
                results: int("results")?,
            },
            "tier_migration" => Event::TierMigration {
                from: Tier::parse(v.get("from")?.as_str()?)?,
                to: Tier::parse(v.get("to")?.as_str()?)?,
                n: int("n")? as u32,
            },
            "buffer_evict" => Event::BufferEvict {
                writeback: v.get("writeback")?.as_bool()?,
            },
            "bound_tightened" => Event::BoundTightened {
                worker: int("worker")? as u32,
                bound: parse_f64(v.get("bound")?)?,
            },
            "worker_finished" => Event::WorkerFinished {
                worker: int("worker")? as u32,
                results: int("results")?,
            },
            "fault_injected" => Event::FaultInjected {
                write: v.get("write")?.as_bool()?,
                transient: v.get("transient")?.as_bool()?,
            },
            "retry_succeeded" => Event::RetrySucceeded {
                retries: int("retries")? as u32,
            },
            "plan_chosen" => Event::PlanChosen {
                path: PlanPath::parse(v.get("path")?.as_str()?)?,
                forced: v.get("forced")?.as_bool()?,
                est_incremental: parse_f64(v.get("est_incremental")?)?,
                est_bulk: parse_f64(v.get("est_bulk")?)?,
            },
            "replanned" => Event::Replanned {
                from: PlanPath::parse(v.get("from")?.as_str()?)?,
                to: PlanPath::parse(v.get("to")?.as_str()?)?,
                at_pop: int("at_pop")?,
                at_pair: int("at_pair")?,
                est_incremental_remaining: parse_f64(v.get("est_incremental_remaining")?)?,
                est_bulk_remaining: parse_f64(v.get("est_bulk_remaining")?)?,
            },
            "session_opened" => Event::SessionOpened {
                session: int("session")? as u32,
                path: PlanPath::parse(v.get("path")?.as_str()?)?,
            },
            "session_batch" => Event::SessionBatch {
                session: int("session")? as u32,
                results: int("results")?,
                total: int("total")?,
            },
            "session_closed" => Event::SessionClosed {
                session: int("session")? as u32,
                results: int("results")?,
                cancelled: v.get("cancelled")?.as_bool()?,
            },
            _ => return None,
        })
    }
}

/// Escapes `s` and appends it as a JSON string literal (quotes included).
/// Re-exported here so event-adjacent writers share one escaper.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_events() -> Vec<Event> {
        vec![
            Event::PairPopped {
                kind: PairKind::NodeNode,
                dist: 1.5,
            },
            Event::PairPopped {
                kind: PairKind::ObjectObject,
                dist: 0.0,
            },
            Event::NodeExpanded {
                side: Side::Both,
                children: 50,
            },
            Event::ResultReported {
                rank: 17,
                dist: 0.125,
            },
            Event::QueueSampled {
                pops: 1024,
                len: 4096,
                results: 12,
            },
            Event::TierMigration {
                from: Tier::Disk,
                to: Tier::List,
                n: 200,
            },
            Event::BufferEvict { writeback: true },
            Event::BufferEvict { writeback: false },
            Event::BoundTightened {
                worker: 3,
                bound: 2.25,
            },
            Event::BoundTightened {
                worker: 0,
                bound: f64::INFINITY,
            },
            Event::WorkerFinished {
                worker: 1,
                results: 999,
            },
            Event::FaultInjected {
                write: true,
                transient: false,
            },
            Event::FaultInjected {
                write: false,
                transient: true,
            },
            Event::RetrySucceeded { retries: 3 },
            Event::PlanChosen {
                path: PlanPath::Bulk,
                forced: false,
                est_incremental: 1.0e6,
                est_bulk: 4.5e5,
            },
            Event::PlanChosen {
                path: PlanPath::Incremental,
                forced: true,
                est_incremental: 2_000.0,
                est_bulk: f64::INFINITY,
            },
            Event::PlanChosen {
                path: PlanPath::Adaptive,
                forced: true,
                est_incremental: 2_000.0,
                est_bulk: 3_000.0,
            },
            Event::Replanned {
                from: PlanPath::Incremental,
                to: PlanPath::Bulk,
                at_pop: 8192,
                at_pair: 120,
                est_incremental_remaining: 9.5e5,
                est_bulk_remaining: 3.25e5,
            },
            Event::SessionOpened {
                session: 3,
                path: PlanPath::Adaptive,
            },
            Event::SessionBatch {
                session: 3,
                results: 64,
                total: 192,
            },
            Event::SessionClosed {
                session: 3,
                results: 192,
                cancelled: true,
            },
            Event::SessionClosed {
                session: 0,
                results: 0,
                cancelled: false,
            },
        ]
    }

    #[test]
    fn ndjson_roundtrip_all_variants() {
        for e in all_events() {
            let line = e.to_ndjson();
            assert!(line.ends_with('\n'));
            let back = Event::parse_ndjson(&line).unwrap_or_else(|| panic!("parse {line}"));
            match (e, back) {
                (
                    Event::BoundTightened { bound: a, .. },
                    Event::BoundTightened { bound: b, .. },
                ) if a.is_infinite() => assert!(b.is_infinite()),
                (e, back) => assert_eq!(e, back, "line {line}"),
            }
        }
    }

    #[test]
    fn integer_distances_still_parse_as_floats() {
        let e = Event::ResultReported { rank: 1, dist: 2.0 };
        let line = e.to_ndjson();
        assert!(line.contains("2.0"), "{line}");
        assert_eq!(Event::parse_ndjson(&line), Some(e));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(Event::parse_ndjson(""), None);
        assert_eq!(Event::parse_ndjson("{}"), None);
        assert_eq!(Event::parse_ndjson("{\"e\":\"no_such_event\"}"), None);
        assert_eq!(Event::parse_ndjson("{\"e\":\"result_reported\"}"), None);
        assert_eq!(Event::parse_ndjson("not json at all"), None);
    }
}
