//! Machine-readable run reports.
//!
//! A [`RunReport`] is a schema-versioned JSON document describing one
//! instrumented join run: host info, workload parameters, counters, the
//! queue-size-vs-results time series, and the distance-vs-rank curve — the
//! raw material of the paper's Figures 6–8. Reports are written atomically
//! ([`write_atomic`]) and can be parsed back and validated
//! ([`RunReport::from_json`], [`RunReport::validate`]).
//!
//! [`RunRecorder`] is the [`EventSink`] that collects the two series from a
//! live event stream, and [`sparkline`] renders any series as a one-line
//! Unicode chart for terminals.

use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::json::{escape_into, JsonValue};
use crate::sink::EventSink;

/// Current report schema version. Bump on breaking field changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Hard cap on stored series points; beyond it the recorder decimates by
/// doubling its stride, so memory stays bounded on any run length.
const SERIES_CAP: usize = 4096;

/// Static facts about the host and build that produced a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// Hardware threads available to the process.
    pub nproc: u64,
    /// `"release"` or `"debug"`.
    pub build_profile: String,
}

impl HostInfo {
    /// Detects the current host and build profile.
    #[must_use]
    pub fn detect() -> Self {
        let nproc = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
        let build_profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        Self {
            nproc,
            build_profile: build_profile.to_string(),
        }
    }

    /// Appends this as a JSON object.
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"nproc\":");
        out.push_str(&self.nproc.to_string());
        out.push_str(",\"build_profile\":\"");
        escape_into(out, &self.build_profile);
        out.push_str("\"}");
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(Self {
            nproc: v.get("nproc")?.as_u64()?,
            build_profile: v.get("build_profile")?.as_str()?.to_string(),
        })
    }
}

/// One instrumented run, ready to serialise.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Human-readable run label.
    pub label: String,
    /// Host / build facts ([`HostInfo::detect`]).
    pub host: Option<HostInfo>,
    /// Workload parameters, e.g. `("n", 10000.0)`, `("k", 1000.0)`.
    pub workload: Vec<(String, f64)>,
    /// Named end-of-run counters (from `JoinStats` and the registry).
    pub counters: Vec<(String, u64)>,
    /// `(results_reported, queue_len)` samples in run order — Figure 6.
    pub queue_series: Vec<(u64, u64)>,
    /// `(rank, distance)` samples in rank order — Figures 7–8.
    pub distance_by_rank: Vec<(u64, f64)>,
    /// Named floating-point metrics (rates, seconds, means ...).
    pub metrics: Vec<(String, f64)>,
    /// Total events the sink saw while recording.
    pub events_recorded: u64,
}

/// A failed [`RunReport::validate`] check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportError(pub String);

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ReportError {}

fn fmt_metric(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no infinities; clamp to a sentinel the parser accepts.
        "null".to_string()
    }
}

impl RunReport {
    /// A report with the given label and detected host info.
    #[must_use]
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            host: Some(HostInfo::detect()),
            ..Self::default()
        }
    }

    /// Renders the report as pretty-ish JSON (stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema_version\": ");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\n  \"label\": \"");
        escape_into(&mut out, &self.label);
        out.push_str("\",\n  \"host\": ");
        match &self.host {
            Some(h) => h.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"workload\": {");
        for (i, (k, v)) in self.workload.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&fmt_metric(*v));
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&v.to_string());
        }
        out.push_str("},\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&fmt_metric(*v));
        }
        out.push_str("},\n  \"events_recorded\": ");
        out.push_str(&self.events_recorded.to_string());
        out.push_str(",\n  \"queue_series\": [");
        for (i, (results, len)) in self.queue_series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{results},{len}]"));
        }
        out.push_str("],\n  \"distance_by_rank\": [");
        for (i, (rank, dist)) in self.distance_by_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{rank},{}]", fmt_metric(*dist)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report previously written by [`RunReport::to_json`].
    /// Rejects unknown schema versions.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let v = JsonValue::parse(text).map_err(|e| ReportError(format!("bad json: {e}")))?;
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ReportError("missing schema_version".into()))?;
        if version != SCHEMA_VERSION {
            return Err(ReportError(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ReportError("missing label".into()))?
            .to_string();
        let host = match v.get("host") {
            Some(JsonValue::Null) | None => None,
            Some(h) => {
                Some(HostInfo::from_json(h).ok_or_else(|| ReportError("malformed host".into()))?)
            }
        };
        let obj_pairs = |key: &str| -> Result<Vec<(String, f64)>, ReportError> {
            match v.get(key) {
                Some(JsonValue::Obj(fields)) => fields
                    .iter()
                    .map(|(k, val)| match val {
                        JsonValue::Num(n) => Ok((k.clone(), *n)),
                        JsonValue::Null => Ok((k.clone(), f64::NAN)),
                        _ => Err(ReportError(format!("non-numeric {key}.{k}"))),
                    })
                    .collect(),
                None => Ok(Vec::new()),
                _ => Err(ReportError(format!("{key} is not an object"))),
            }
        };
        let workload = obj_pairs("workload")?;
        let metrics = obj_pairs("metrics")?;
        let counters = match v.get("counters") {
            Some(JsonValue::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| ReportError(format!("counter {k} not a non-negative int")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("counters is not an object".into())),
        };
        let pair_u64 = |p: &JsonValue, what: &str| -> Result<(u64, u64), ReportError> {
            let arr = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| ReportError(format!("{what} entry is not a pair")))?;
            Ok((
                arr[0]
                    .as_u64()
                    .ok_or_else(|| ReportError(format!("{what} x not a u64")))?,
                arr[1]
                    .as_u64()
                    .ok_or_else(|| ReportError(format!("{what} y not a u64")))?,
            ))
        };
        let queue_series = match v.get("queue_series") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|p| pair_u64(p, "queue_series"))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("queue_series is not an array".into())),
        };
        let distance_by_rank = match v.get("distance_by_rank") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|p| -> Result<(u64, f64), ReportError> {
                    let arr = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| ReportError("distance_by_rank entry not a pair".into()))?;
                    Ok((
                        arr[0]
                            .as_u64()
                            .ok_or_else(|| ReportError("rank not a u64".into()))?,
                        arr[1]
                            .as_f64()
                            .ok_or_else(|| ReportError("distance not a number".into()))?,
                    ))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("distance_by_rank is not an array".into())),
        };
        let events_recorded = v
            .get("events_recorded")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        Ok(Self {
            label,
            host,
            workload,
            counters,
            queue_series,
            distance_by_rank,
            metrics,
            events_recorded,
        })
    }

    /// Schema checks beyond parseability: host sanity, ranks strictly
    /// increasing, distances non-negative and non-decreasing.
    pub fn validate(&self) -> Result<(), ReportError> {
        if let Some(h) = &self.host {
            if h.nproc == 0 {
                return Err(ReportError("host.nproc must be >= 1".into()));
            }
            if h.build_profile != "release" && h.build_profile != "debug" {
                return Err(ReportError(format!(
                    "host.build_profile {:?} not release/debug",
                    h.build_profile
                )));
            }
        }
        let mut prev_rank: Option<u64> = None;
        let mut prev_dist = 0.0f64;
        for &(rank, dist) in &self.distance_by_rank {
            if let Some(p) = prev_rank {
                if rank <= p {
                    return Err(ReportError(format!(
                        "ranks not strictly increasing at {rank} (prev {p})"
                    )));
                }
            }
            if dist.is_nan() || dist < 0.0 {
                return Err(ReportError(format!("distance at rank {rank} is {dist}")));
            }
            if dist + 1e-9 < prev_dist {
                return Err(ReportError(format!(
                    "distances decrease at rank {rank}: {dist} < {prev_dist}"
                )));
            }
            prev_rank = Some(rank);
            prev_dist = dist.max(prev_dist);
        }
        Ok(())
    }

    /// True if the queue-size series shows the grow-then-drain shape of
    /// the paper's Figure 6: its peak is well above both endpoints.
    #[must_use]
    pub fn grow_then_drain(&self) -> bool {
        if self.queue_series.len() < 3 {
            return false;
        }
        let first = self.queue_series.first().map_or(0, |p| p.1);
        let last = self.queue_series.last().map_or(0, |p| p.1);
        let peak = self.queue_series.iter().map(|p| p.1).max().unwrap_or(0);
        peak > first.saturating_mul(2).max(8) && peak > last.saturating_mul(2).max(8)
    }

    /// Writes the report atomically (temp file + rename) to `path`.
    pub fn write_atomic<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }
}

/// Writes `bytes` to `path` atomically: the data goes to a uniquely named
/// temp file in the same directory (same filesystem, so rename cannot
/// cross devices), is flushed, then renamed over the destination. Readers
/// never observe a torn file.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // Unique-enough temp name: pid + address entropy from a stack local.
    let token = {
        let local = 0u8;
        (std::ptr::addr_of!(local) as usize) ^ (std::process::id() as usize).rotate_left(17)
    };
    let tmp_name = format!(".{}.tmp{:x}", file_name.to_string_lossy(), token);
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Renders `values` as a one-line Unicode sparkline of at most `width`
/// cells, downsampling by taking the max within each cell (peaks matter
/// for queue-size curves). Empty input renders as an empty string.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let cells = width.min(values.len());
    let mut out = String::with_capacity(cells * 3);
    for c in 0..cells {
        let start = c * values.len() / cells;
        let end = ((c + 1) * values.len() / cells).max(start + 1);
        let cell_max = values[start..end.min(values.len())]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        if !cell_max.is_finite() {
            out.push(BARS[0]);
            continue;
        }
        let t = if hi > lo {
            (cell_max - lo) / (hi - lo)
        } else {
            0.0
        };
        let idx = ((t * 7.0).round() as usize).min(7);
        out.push(BARS[idx]);
    }
    out
}

struct RecorderInner {
    queue_series: Vec<(u64, u64)>,
    queue_stride: u64,
    queue_seen: u64,
    distance_by_rank: Vec<(u64, f64)>,
    rank_stride: u64,
    rank_seen: u64,
    events: u64,
    last_result: Option<(u64, f64)>,
}

impl RecorderInner {
    /// Halves a series in place and doubles its stride — called when a
    /// series hits [`SERIES_CAP`], keeping memory bounded while the
    /// retained points stay evenly spaced.
    fn decimate<T: Copy>(series: &mut Vec<T>, stride: &mut u64) {
        let mut keep = 0;
        for i in (0..series.len()).step_by(2) {
            series[keep] = series[i];
            keep += 1;
        }
        series.truncate(keep);
        *stride *= 2;
    }
}

/// An [`EventSink`] that accumulates the two report series from a live
/// event stream: `QueueSampled` → queue-size-vs-results, `ResultReported`
/// → distance-vs-rank. Bounded memory via stride-doubling decimation; the
/// final result is always retained exactly.
pub struct RunRecorder {
    inner: Mutex<RecorderInner>,
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(RecorderInner {
                queue_series: Vec::new(),
                queue_stride: 1,
                queue_seen: 0,
                distance_by_rank: Vec::new(),
                rank_stride: 1,
                rank_seen: 0,
                events: 0,
                last_result: None,
            }),
        }
    }

    /// Moves the recorded series into `report` (and sets
    /// `events_recorded`). The final reported result is appended to the
    /// rank curve if decimation dropped it.
    pub fn fill_report(&self, report: &mut RunReport) {
        let mut inner = self.inner.lock().unwrap();
        report.events_recorded = inner.events;
        report.queue_series = std::mem::take(&mut inner.queue_series);
        let mut ranks = std::mem::take(&mut inner.distance_by_rank);
        if let Some(last) = inner.last_result {
            if ranks.last().is_none_or(|&(r, _)| r < last.0) {
                ranks.push(last);
            }
        }
        report.distance_by_rank = ranks;
    }

    /// Total events seen so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.inner.lock().unwrap().events
    }
}

impl EventSink for RunRecorder {
    fn emit(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        inner.events += 1;
        match *event {
            Event::QueueSampled { len, results, .. } => {
                inner.queue_seen += 1;
                if inner.queue_seen.is_multiple_of(inner.queue_stride) {
                    inner.queue_series.push((results, len));
                    if inner.queue_series.len() >= SERIES_CAP {
                        let RecorderInner {
                            queue_series,
                            queue_stride,
                            ..
                        } = &mut *inner;
                        RecorderInner::decimate(queue_series, queue_stride);
                    }
                }
            }
            Event::ResultReported { rank, dist } => {
                inner.last_result = Some((rank, dist));
                inner.rank_seen += 1;
                if inner.rank_seen.is_multiple_of(inner.rank_stride) {
                    inner.distance_by_rank.push((rank, dist));
                    if inner.distance_by_rank.len() >= SERIES_CAP {
                        let RecorderInner {
                            distance_by_rank,
                            rank_stride,
                            ..
                        } = &mut *inner;
                        RecorderInner::decimate(distance_by_rank, rank_stride);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            label: "test run".into(),
            host: Some(HostInfo {
                nproc: 4,
                build_profile: "release".into(),
            }),
            workload: vec![("n".into(), 10000.0), ("k".into(), 1000.0)],
            counters: vec![("distance_calcs".into(), 12345)],
            queue_series: vec![(0, 10), (100, 500), (200, 900), (300, 50)],
            distance_by_rank: vec![(1, 0.0), (2, 0.5), (10, 0.5), (100, 2.25)],
            metrics: vec![("seconds".into(), 1.25)],
            events_recorded: 42,
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let r = sample_report();
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back.label, r.label);
        assert_eq!(back.host, r.host);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.queue_series, r.queue_series);
        assert_eq!(back.distance_by_rank, r.distance_by_rank);
        assert_eq!(back.events_recorded, 42);
        back.validate().expect("valid");
    }

    #[test]
    fn from_json_rejects_bad_schema_version() {
        let mut json = sample_report().to_json();
        json = json.replace("\"schema_version\": 1", "\"schema_version\": 99");
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn validate_catches_bad_series() {
        let mut r = sample_report();
        r.distance_by_rank = vec![(1, 0.5), (1, 0.6)];
        assert!(r.validate().is_err(), "duplicate rank");
        r.distance_by_rank = vec![(1, 0.5), (2, 0.1)];
        assert!(r.validate().is_err(), "decreasing distance");
        r.distance_by_rank = vec![(1, -0.5)];
        assert!(r.validate().is_err(), "negative distance");
        r.distance_by_rank.clear();
        r.host.as_mut().unwrap().nproc = 0;
        assert!(r.validate().is_err(), "zero nproc");
    }

    #[test]
    fn grow_then_drain_shape_check() {
        let mut r = sample_report();
        assert!(r.grow_then_drain());
        r.queue_series = vec![(0, 10), (1, 11), (2, 12)];
        assert!(!r.grow_then_drain(), "monotone growth is not a drain");
        r.queue_series.clear();
        assert!(!r.grow_then_drain());
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("sdj_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sparkline_renders_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[1.0, 1.0, 1.0], 3);
        assert_eq!(flat, "▁▁▁");
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        let peak = sparkline(&[0.0, 10.0, 0.0], 3);
        assert_eq!(peak.chars().count(), 3);
        assert!(peak.contains('█'));
        // Width smaller than data downsamples, keeping peaks.
        let wide = sparkline(&[0.0, 0.0, 9.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(wide.chars().count(), 2);
        assert!(wide.contains('█'));
    }

    #[test]
    fn recorder_collects_and_decimates() {
        let rec = RunRecorder::new();
        for i in 0..10_000u64 {
            rec.emit(&Event::QueueSampled {
                pops: i,
                len: i % 100,
                results: i,
            });
            rec.emit(&Event::ResultReported {
                rank: i + 1,
                dist: i as f64 * 0.001,
            });
        }
        let mut report = RunReport::new("decimation");
        rec.fill_report(&mut report);
        assert!(report.queue_series.len() <= SERIES_CAP);
        assert!(report.distance_by_rank.len() <= SERIES_CAP);
        assert!(report.queue_series.len() > SERIES_CAP / 4);
        // The final result survives decimation.
        assert_eq!(report.distance_by_rank.last().unwrap().0, 10_000);
        assert_eq!(report.events_recorded, 20_000);
        report.validate().expect("valid after decimation");
    }
}
