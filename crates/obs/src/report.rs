//! Machine-readable run reports.
//!
//! A [`RunReport`] is a schema-versioned JSON document describing one
//! instrumented join run: host info, workload parameters, counters, the
//! queue-size-vs-results time series, and the distance-vs-rank curve — the
//! raw material of the paper's Figures 6–8. Reports are written atomically
//! ([`write_atomic`]) and can be parsed back and validated
//! ([`RunReport::from_json`], [`RunReport::validate`]).
//!
//! [`RunRecorder`] is the [`EventSink`] that collects the two series from a
//! live event stream, and [`sparkline`] renders any series as a one-line
//! Unicode chart for terminals.

use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::Event;
use crate::json::{escape_into, JsonValue};
use crate::metrics::Snapshot;
use crate::sink::EventSink;
use crate::span::Phase;

/// Current report schema version. Bump on breaking field changes.
/// v2: host gains `cpu_model`; optional `profile` (per-phase span table)
/// and `plan.calibration` sections. Still v2 (additive): optional
/// `sessions` array attributing one service run's counters per cursor
/// session — absent for single-query reports, so older readers are
/// unaffected.
pub const SCHEMA_VERSION: u64 = 2;

/// Hard cap on stored series points; beyond it the recorder decimates by
/// doubling its stride, so memory stays bounded on any run length.
const SERIES_CAP: usize = 4096;

/// Static facts about the host and build that produced a report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// Hardware threads available to the process.
    pub nproc: u64,
    /// CPU model string (`"unknown"` when undetectable), so the
    /// "1-CPU container host" caveat on benchmark numbers is
    /// machine-readable.
    pub cpu_model: String,
    /// `"release"` or `"debug"`.
    pub build_profile: String,
}

impl HostInfo {
    /// Detects the current host and build profile.
    #[must_use]
    pub fn detect() -> Self {
        let nproc = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
        let build_profile = if cfg!(debug_assertions) {
            "debug"
        } else {
            "release"
        };
        Self {
            nproc,
            cpu_model: Self::detect_cpu_model(),
            build_profile: build_profile.to_string(),
        }
    }

    /// Best-effort CPU model string: `/proc/cpuinfo` on Linux, `"unknown"`
    /// elsewhere or on failure.
    fn detect_cpu_model() -> String {
        #[cfg(target_os = "linux")]
        {
            if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
                for line in info.lines() {
                    // x86 says "model name", arm says "Processor"/"CPU part".
                    if let Some(rest) = line
                        .strip_prefix("model name")
                        .or_else(|| line.strip_prefix("Processor"))
                    {
                        if let Some((_, model)) = rest.split_once(':') {
                            let model = model.trim();
                            if !model.is_empty() {
                                return model.to_string();
                            }
                        }
                    }
                }
            }
        }
        "unknown".to_string()
    }

    /// Appends this as a JSON object.
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"nproc\":");
        out.push_str(&self.nproc.to_string());
        out.push_str(",\"cpu_model\":\"");
        escape_into(out, &self.cpu_model);
        out.push_str("\",\"build_profile\":\"");
        escape_into(out, &self.build_profile);
        out.push_str("\"}");
    }

    fn from_json(v: &JsonValue) -> Option<Self> {
        Some(Self {
            nproc: v.get("nproc")?.as_u64()?,
            cpu_model: v
                .get("cpu_model")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_string(),
            build_profile: v.get("build_profile")?.as_str()?.to_string(),
        })
    }
}

/// One row of the EXPLAIN-ANALYZE profile table: a phase's call count and
/// self-time estimates (nested spans are charged as self-time, so rows sum
/// without double counting).
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Phase name ([`Phase::name`]).
    pub phase: String,
    /// Exact spans entered.
    pub calls: u64,
    /// Spans whose self-time was measured.
    pub sampled_calls: u64,
    /// Estimated total self-time (sampled time scaled to all calls), ns.
    pub est_total_ns: f64,
    /// Largest single measured self-time, ns.
    pub max_ns: u64,
    /// Median measured self-time per call, ns (histogram estimate).
    pub p50_ns: f64,
    /// 95th-percentile self-time per call, ns.
    pub p95_ns: f64,
    /// 99th-percentile self-time per call, ns.
    pub p99_ns: f64,
}

impl PhaseRow {
    /// Mean estimated self-time per call, ns.
    #[must_use]
    pub fn ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.est_total_ns / self.calls as f64
        }
    }
}

/// The EXPLAIN-ANALYZE profile of one run: wall clock, worker count, and
/// the per-phase self-time table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSection {
    /// Measured wall-clock seconds of the profiled run.
    pub wall_seconds: f64,
    /// Worker threads the run used (self-times may sum up to
    /// `wall_seconds × threads`).
    pub threads: u64,
    /// Per-phase rows, in [`Phase::ALL`] order (touched phases only).
    pub phases: Vec<PhaseRow>,
}

impl ProfileSection {
    /// Builds the table from a registry snapshot: span accumulators plus
    /// the `span.<phase>.ns` histograms for the per-call quantiles.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot, wall_seconds: f64, threads: u64) -> Self {
        let phases = snap
            .spans
            .iter()
            .map(|s| {
                let hist = snap.histogram(&format!("span.{}.ns", s.phase.name()));
                let q = |f: fn(&crate::metrics::HistogramSummary) -> f64| hist.map_or(0.0, f);
                PhaseRow {
                    phase: s.phase.name().to_string(),
                    calls: s.calls,
                    sampled_calls: s.sampled_calls,
                    est_total_ns: s.est_total_ns(),
                    max_ns: s.max_ns,
                    p50_ns: q(crate::metrics::HistogramSummary::p50),
                    p95_ns: q(crate::metrics::HistogramSummary::p95),
                    p99_ns: q(crate::metrics::HistogramSummary::p99),
                }
            })
            .collect();
        Self {
            wall_seconds,
            threads: threads.max(1),
            phases,
        }
    }

    /// Sum of estimated per-phase self-times, ns.
    #[must_use]
    pub fn attributed_ns(&self) -> f64 {
        self.phases.iter().map(|p| p.est_total_ns).sum()
    }

    /// Attributed time as a fraction of the available wall clock
    /// (`wall_seconds × threads`); 0 when the wall clock is unknown.
    #[must_use]
    pub fn attributed_fraction(&self) -> f64 {
        let budget = self.wall_seconds * 1e9 * self.threads.max(1) as f64;
        if budget <= 0.0 {
            0.0
        } else {
            self.attributed_ns() / budget
        }
    }

    /// Conservation check: attributed self-time must not exceed the wall
    /// clock budget by more than `slack` (e.g. 0.25 allows 25% sampling
    /// noise). Nested spans are charged as self-time, so a sound profile
    /// cannot legitimately exceed the budget beyond estimator error.
    #[must_use]
    pub fn conserves(&self, slack: f64) -> bool {
        self.wall_seconds > 0.0 && self.attributed_fraction() <= 1.0 + slack.max(0.0)
    }
}

/// Planner calibration: the cost model's predictions recorded next to the
/// observed outcome of the run it planned.
#[derive(Clone, Debug, PartialEq)]
pub struct CalibrationSection {
    /// Path the planner chose (`"incremental"` / `"bulk"`).
    pub choice: String,
    /// Whether the executed path was forced rather than planned.
    pub forced: bool,
    /// Predicted abstract cost of the incremental path.
    pub est_incremental: f64,
    /// Predicted abstract cost of the bulk path.
    pub est_bulk: f64,
    /// Predicted result-pair count.
    pub est_pairs: f64,
    /// Predicted cost ratio `est_incremental / est_bulk` (the planner
    /// picks incremental when this is < 1).
    pub predicted_ratio: f64,
    /// Measured wall-clock seconds of the executed path.
    pub observed_seconds: f64,
    /// Observed result-pair count.
    pub observed_pairs: u64,
}

/// Per-session attribution row of a multi-cursor service run: which
/// session pulled how much, on which plan, and the share of the shared
/// buffer pool / queue memory its pulls accounted for.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SessionSection {
    /// Service-assigned session id.
    pub id: u32,
    /// Caller-supplied session label (may be empty).
    pub label: String,
    /// Executed plan path: `"incremental"`, `"bulk"` or `"adaptive"`.
    pub plan: String,
    /// Results the session emitted.
    pub results: u64,
    /// `next_batch` pulls the session served.
    pub batches: u64,
    /// True when the session was cancelled before exhausting its stream.
    pub cancelled: bool,
    /// Attributed counters (`buf.*` pool deltas measured across this
    /// session's serialized pull windows, `pq.*` queue occupancy peaks).
    pub counters: Vec<(String, u64)>,
}

/// One instrumented run, ready to serialise.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Human-readable run label.
    pub label: String,
    /// Host / build facts ([`HostInfo::detect`]).
    pub host: Option<HostInfo>,
    /// Workload parameters, e.g. `("n", 10000.0)`, `("k", 1000.0)`.
    pub workload: Vec<(String, f64)>,
    /// Named end-of-run counters (from `JoinStats` and the registry).
    pub counters: Vec<(String, u64)>,
    /// `(results_reported, queue_len)` samples in run order — Figure 6.
    pub queue_series: Vec<(u64, u64)>,
    /// `(rank, distance)` samples in rank order — Figures 7–8.
    pub distance_by_rank: Vec<(u64, f64)>,
    /// Named floating-point metrics (rates, seconds, means ...).
    pub metrics: Vec<(String, f64)>,
    /// Total events the sink saw while recording.
    pub events_recorded: u64,
    /// EXPLAIN-ANALYZE-style per-phase profile, when spans were on.
    pub profile: Option<ProfileSection>,
    /// Planner predictions vs the observed run (`plan.calibration`).
    pub calibration: Option<CalibrationSection>,
    /// Per-session attribution rows of a service run (empty — and omitted
    /// from the JSON — for single-query reports).
    pub sessions: Vec<SessionSection>,
}

/// A failed [`RunReport::validate`] check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportError(pub String);

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ReportError {}

fn fmt_metric(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains(['.', 'e', 'E']) {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no infinities; clamp to a sentinel the parser accepts.
        "null".to_string()
    }
}

impl RunReport {
    /// A report with the given label and detected host info.
    #[must_use]
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            host: Some(HostInfo::detect()),
            ..Self::default()
        }
    }

    /// Renders the report as pretty-ish JSON (stable field order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema_version\": ");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\n  \"label\": \"");
        escape_into(&mut out, &self.label);
        out.push_str("\",\n  \"host\": ");
        match &self.host {
            Some(h) => h.write_json(&mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\n  \"workload\": {");
        for (i, (k, v)) in self.workload.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&fmt_metric(*v));
        }
        out.push_str("},\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&v.to_string());
        }
        out.push_str("},\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\": ");
            out.push_str(&fmt_metric(*v));
        }
        out.push_str("},\n  \"events_recorded\": ");
        out.push_str(&self.events_recorded.to_string());
        if let Some(p) = &self.profile {
            out.push_str(",\n  \"profile\": {\"wall_seconds\": ");
            out.push_str(&fmt_metric(p.wall_seconds));
            out.push_str(", \"threads\": ");
            out.push_str(&p.threads.to_string());
            out.push_str(", \"phases\": [");
            for (i, row) in p.phases.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"phase\": \"");
                escape_into(&mut out, &row.phase);
                out.push_str(&format!(
                    "\", \"calls\": {}, \"sampled_calls\": {}, \"est_total_ns\": {}, \
                     \"max_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
                    row.calls,
                    row.sampled_calls,
                    fmt_metric(row.est_total_ns),
                    row.max_ns,
                    fmt_metric(row.p50_ns),
                    fmt_metric(row.p95_ns),
                    fmt_metric(row.p99_ns),
                ));
            }
            out.push_str("\n  ]}");
        }
        if let Some(c) = &self.calibration {
            out.push_str(",\n  \"plan\": {\"calibration\": {\"choice\": \"");
            escape_into(&mut out, &c.choice);
            out.push_str(&format!(
                "\", \"forced\": {}, \"est_incremental\": {}, \"est_bulk\": {}, \
                 \"est_pairs\": {}, \"predicted_ratio\": {}, \"observed_seconds\": {}, \
                 \"observed_pairs\": {}}}}}",
                c.forced,
                fmt_metric(c.est_incremental),
                fmt_metric(c.est_bulk),
                fmt_metric(c.est_pairs),
                fmt_metric(c.predicted_ratio),
                fmt_metric(c.observed_seconds),
                c.observed_pairs,
            ));
        }
        if !self.sessions.is_empty() {
            out.push_str(",\n  \"sessions\": [");
            for (i, s) in self.sessions.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("\n    {\"id\": ");
                out.push_str(&s.id.to_string());
                out.push_str(", \"label\": \"");
                escape_into(&mut out, &s.label);
                out.push_str("\", \"plan\": \"");
                escape_into(&mut out, &s.plan);
                out.push_str(&format!(
                    "\", \"results\": {}, \"batches\": {}, \"cancelled\": {}, \"counters\": {{",
                    s.results, s.batches, s.cancelled
                ));
                for (j, (k, v)) in s.counters.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push('"');
                    escape_into(&mut out, k);
                    out.push_str("\": ");
                    out.push_str(&v.to_string());
                }
                out.push_str("}}");
            }
            out.push_str("\n  ]");
        }
        out.push_str(",\n  \"queue_series\": [");
        for (i, (results, len)) in self.queue_series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{results},{len}]"));
        }
        out.push_str("],\n  \"distance_by_rank\": [");
        for (i, (rank, dist)) in self.distance_by_rank.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{rank},{}]", fmt_metric(*dist)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses a report previously written by [`RunReport::to_json`].
    /// Rejects unknown schema versions.
    pub fn from_json(text: &str) -> Result<Self, ReportError> {
        let v = JsonValue::parse(text).map_err(|e| ReportError(format!("bad json: {e}")))?;
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ReportError("missing schema_version".into()))?;
        if version != SCHEMA_VERSION {
            return Err(ReportError(format!(
                "unsupported schema_version {version} (expected {SCHEMA_VERSION})"
            )));
        }
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ReportError("missing label".into()))?
            .to_string();
        let host = match v.get("host") {
            Some(JsonValue::Null) | None => None,
            Some(h) => {
                Some(HostInfo::from_json(h).ok_or_else(|| ReportError("malformed host".into()))?)
            }
        };
        let obj_pairs = |key: &str| -> Result<Vec<(String, f64)>, ReportError> {
            match v.get(key) {
                Some(JsonValue::Obj(fields)) => fields
                    .iter()
                    .map(|(k, val)| match val {
                        JsonValue::Num(n) => Ok((k.clone(), *n)),
                        JsonValue::Null => Ok((k.clone(), f64::NAN)),
                        _ => Err(ReportError(format!("non-numeric {key}.{k}"))),
                    })
                    .collect(),
                None => Ok(Vec::new()),
                _ => Err(ReportError(format!("{key} is not an object"))),
            }
        };
        let workload = obj_pairs("workload")?;
        let metrics = obj_pairs("metrics")?;
        let counters = match v.get("counters") {
            Some(JsonValue::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| ReportError(format!("counter {k} not a non-negative int")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("counters is not an object".into())),
        };
        let pair_u64 = |p: &JsonValue, what: &str| -> Result<(u64, u64), ReportError> {
            let arr = p
                .as_arr()
                .filter(|a| a.len() == 2)
                .ok_or_else(|| ReportError(format!("{what} entry is not a pair")))?;
            Ok((
                arr[0]
                    .as_u64()
                    .ok_or_else(|| ReportError(format!("{what} x not a u64")))?,
                arr[1]
                    .as_u64()
                    .ok_or_else(|| ReportError(format!("{what} y not a u64")))?,
            ))
        };
        let queue_series = match v.get("queue_series") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|p| pair_u64(p, "queue_series"))
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("queue_series is not an array".into())),
        };
        let distance_by_rank = match v.get("distance_by_rank") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|p| -> Result<(u64, f64), ReportError> {
                    let arr = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| ReportError("distance_by_rank entry not a pair".into()))?;
                    Ok((
                        arr[0]
                            .as_u64()
                            .ok_or_else(|| ReportError("rank not a u64".into()))?,
                        arr[1]
                            .as_f64()
                            .ok_or_else(|| ReportError("distance not a number".into()))?,
                    ))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("distance_by_rank is not an array".into())),
        };
        let events_recorded = v
            .get("events_recorded")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let profile = match v.get("profile") {
            Some(JsonValue::Null) | None => None,
            Some(p) => Some(Self::profile_from_json(p)?),
        };
        let calibration = match v.get("plan").and_then(|p| p.get("calibration")) {
            Some(JsonValue::Null) | None => None,
            Some(c) => Some(Self::calibration_from_json(c)?),
        };
        let sessions = match v.get("sessions") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(Self::session_from_json)
                .collect::<Result<Vec<_>, _>>()?,
            None | Some(JsonValue::Null) => Vec::new(),
            _ => return Err(ReportError("sessions is not an array".into())),
        };
        Ok(Self {
            label,
            host,
            workload,
            counters,
            queue_series,
            distance_by_rank,
            metrics,
            events_recorded,
            profile,
            calibration,
            sessions,
        })
    }

    fn session_from_json(s: &JsonValue) -> Result<SessionSection, ReportError> {
        let uint = |key: &str| -> Result<u64, ReportError> {
            s.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ReportError(format!("session {key} missing or not a u64")))
        };
        let text = |key: &str| -> Result<String, ReportError> {
            Ok(s.get(key)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ReportError(format!("session {key} missing")))?
                .to_string())
        };
        let counters = match s.get("counters") {
            Some(JsonValue::Obj(fields)) => fields
                .iter()
                .map(|(k, val)| {
                    val.as_u64().map(|n| (k.clone(), n)).ok_or_else(|| {
                        ReportError(format!("session counter {k} not a non-negative int"))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
            _ => return Err(ReportError("session counters is not an object".into())),
        };
        Ok(SessionSection {
            id: u32::try_from(uint("id")?)
                .map_err(|_| ReportError("session id exceeds u32".into()))?,
            label: text("label")?,
            plan: text("plan")?,
            results: uint("results")?,
            batches: uint("batches")?,
            cancelled: s
                .get("cancelled")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| ReportError("session cancelled missing".into()))?,
            counters,
        })
    }

    fn profile_from_json(p: &JsonValue) -> Result<ProfileSection, ReportError> {
        let num = |key: &str| -> Result<f64, ReportError> {
            p.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ReportError(format!("profile.{key} missing or not a number")))
        };
        let phases = match p.get("phases") {
            Some(JsonValue::Arr(items)) => items
                .iter()
                .map(|row| -> Result<PhaseRow, ReportError> {
                    let rnum = |key: &str| -> Result<f64, ReportError> {
                        row.get(key).and_then(JsonValue::as_f64).ok_or_else(|| {
                            ReportError(format!("profile phase {key} missing or not a number"))
                        })
                    };
                    let runt = |key: &str| -> Result<u64, ReportError> {
                        row.get(key).and_then(JsonValue::as_u64).ok_or_else(|| {
                            ReportError(format!("profile phase {key} missing or not a u64"))
                        })
                    };
                    Ok(PhaseRow {
                        phase: row
                            .get("phase")
                            .and_then(JsonValue::as_str)
                            .ok_or_else(|| ReportError("profile phase has no name".into()))?
                            .to_string(),
                        calls: runt("calls")?,
                        sampled_calls: runt("sampled_calls")?,
                        est_total_ns: rnum("est_total_ns")?,
                        max_ns: runt("max_ns")?,
                        p50_ns: rnum("p50_ns")?,
                        p95_ns: rnum("p95_ns")?,
                        p99_ns: rnum("p99_ns")?,
                    })
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(ReportError("profile.phases is not an array".into())),
        };
        Ok(ProfileSection {
            wall_seconds: num("wall_seconds")?,
            threads: p
                .get("threads")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ReportError("profile.threads missing".into()))?,
            phases,
        })
    }

    fn calibration_from_json(c: &JsonValue) -> Result<CalibrationSection, ReportError> {
        let num = |key: &str| -> Result<f64, ReportError> {
            c.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| ReportError(format!("plan.calibration.{key} missing")))
        };
        Ok(CalibrationSection {
            choice: c
                .get("choice")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| ReportError("plan.calibration.choice missing".into()))?
                .to_string(),
            forced: c
                .get("forced")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| ReportError("plan.calibration.forced missing".into()))?,
            est_incremental: num("est_incremental")?,
            est_bulk: num("est_bulk")?,
            est_pairs: num("est_pairs")?,
            predicted_ratio: num("predicted_ratio")?,
            observed_seconds: num("observed_seconds")?,
            observed_pairs: c
                .get("observed_pairs")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| ReportError("plan.calibration.observed_pairs missing".into()))?,
        })
    }

    /// Schema checks beyond parseability: host sanity, ranks strictly
    /// increasing, distances non-negative and non-decreasing.
    pub fn validate(&self) -> Result<(), ReportError> {
        if let Some(h) = &self.host {
            if h.nproc == 0 {
                return Err(ReportError("host.nproc must be >= 1".into()));
            }
            if h.build_profile != "release" && h.build_profile != "debug" {
                return Err(ReportError(format!(
                    "host.build_profile {:?} not release/debug",
                    h.build_profile
                )));
            }
        }
        let mut prev_rank: Option<u64> = None;
        let mut prev_dist = 0.0f64;
        for &(rank, dist) in &self.distance_by_rank {
            if let Some(p) = prev_rank {
                if rank <= p {
                    return Err(ReportError(format!(
                        "ranks not strictly increasing at {rank} (prev {p})"
                    )));
                }
            }
            if dist.is_nan() || dist < 0.0 {
                return Err(ReportError(format!("distance at rank {rank} is {dist}")));
            }
            if dist + 1e-9 < prev_dist {
                return Err(ReportError(format!(
                    "distances decrease at rank {rank}: {dist} < {prev_dist}"
                )));
            }
            prev_rank = Some(rank);
            prev_dist = dist.max(prev_dist);
        }
        if let Some(p) = &self.profile {
            if !p.wall_seconds.is_finite() || p.wall_seconds < 0.0 {
                return Err(ReportError(format!(
                    "profile.wall_seconds is {}",
                    p.wall_seconds
                )));
            }
            if p.threads == 0 {
                return Err(ReportError("profile.threads must be >= 1".into()));
            }
            let mut seen = Vec::new();
            for row in &p.phases {
                if Phase::from_name(&row.phase).is_none() {
                    return Err(ReportError(format!(
                        "unknown profile phase {:?}",
                        row.phase
                    )));
                }
                if seen.contains(&row.phase) {
                    return Err(ReportError(format!(
                        "duplicate profile phase {:?}",
                        row.phase
                    )));
                }
                seen.push(row.phase.clone());
                if row.calls == 0 {
                    return Err(ReportError(format!(
                        "profile phase {} has 0 calls",
                        row.phase
                    )));
                }
                if row.sampled_calls > row.calls {
                    return Err(ReportError(format!(
                        "profile phase {} sampled {} of {} calls",
                        row.phase, row.sampled_calls, row.calls
                    )));
                }
                if !row.est_total_ns.is_finite() || row.est_total_ns < 0.0 {
                    return Err(ReportError(format!(
                        "profile phase {} est_total_ns is {}",
                        row.phase, row.est_total_ns
                    )));
                }
                if row.sampled_calls > 0 && row.est_total_ns <= 0.0 {
                    return Err(ReportError(format!(
                        "profile phase {} was sampled but has zero time",
                        row.phase
                    )));
                }
            }
        }
        if let Some(c) = &self.calibration {
            if c.choice != "incremental" && c.choice != "bulk" && c.choice != "adaptive" {
                return Err(ReportError(format!(
                    "plan.calibration.choice {:?} not incremental/bulk/adaptive",
                    c.choice
                )));
            }
            for (name, v) in [
                ("est_incremental", c.est_incremental),
                ("est_bulk", c.est_bulk),
                ("est_pairs", c.est_pairs),
                ("predicted_ratio", c.predicted_ratio),
                ("observed_seconds", c.observed_seconds),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(ReportError(format!("plan.calibration.{name} is {v}")));
                }
            }
        }
        let mut session_ids = Vec::new();
        for s in &self.sessions {
            if session_ids.contains(&s.id) {
                return Err(ReportError(format!("duplicate session id {}", s.id)));
            }
            session_ids.push(s.id);
            if s.plan != "incremental" && s.plan != "bulk" && s.plan != "adaptive" {
                return Err(ReportError(format!(
                    "session {} plan {:?} not incremental/bulk/adaptive",
                    s.id, s.plan
                )));
            }
        }
        Ok(())
    }

    /// True if the queue-size series shows the grow-then-drain shape of
    /// the paper's Figure 6: its peak is well above both endpoints.
    #[must_use]
    pub fn grow_then_drain(&self) -> bool {
        if self.queue_series.len() < 3 {
            return false;
        }
        let first = self.queue_series.first().map_or(0, |p| p.1);
        let last = self.queue_series.last().map_or(0, |p| p.1);
        let peak = self.queue_series.iter().map(|p| p.1).max().unwrap_or(0);
        peak > first.saturating_mul(2).max(8) && peak > last.saturating_mul(2).max(8)
    }

    /// Writes the report atomically (temp file + rename) to `path`.
    pub fn write_atomic<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        write_atomic(path, self.to_json().as_bytes())
    }
}

/// Writes `bytes` to `path` atomically: the data goes to a uniquely named
/// temp file in the same directory (same filesystem, so rename cannot
/// cross devices), is flushed, then renamed over the destination. Readers
/// never observe a torn file.
pub fn write_atomic<P: AsRef<Path>>(path: P, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    // Unique-enough temp name: pid + address entropy from a stack local.
    let token = {
        let local = 0u8;
        (std::ptr::addr_of!(local) as usize) ^ (std::process::id() as usize).rotate_left(17)
    };
    let tmp_name = format!(".{}.tmp{:x}", file_name.to_string_lossy(), token);
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp_path, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

/// Renders `values` as a one-line Unicode sparkline of at most `width`
/// cells, downsampling by taking the max within each cell (peaks matter
/// for queue-size curves). Empty input renders as an empty string.
#[must_use]
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let cells = width.min(values.len());
    let mut out = String::with_capacity(cells * 3);
    for c in 0..cells {
        let start = c * values.len() / cells;
        let end = ((c + 1) * values.len() / cells).max(start + 1);
        let cell_max = values[start..end.min(values.len())]
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        if !cell_max.is_finite() {
            out.push(BARS[0]);
            continue;
        }
        let t = if hi > lo {
            (cell_max - lo) / (hi - lo)
        } else {
            0.0
        };
        let idx = ((t * 7.0).round() as usize).min(7);
        out.push(BARS[idx]);
    }
    out
}

struct RecorderInner {
    queue_series: Vec<(u64, u64)>,
    queue_stride: u64,
    queue_seen: u64,
    distance_by_rank: Vec<(u64, f64)>,
    rank_stride: u64,
    rank_seen: u64,
    events: u64,
    last_result: Option<(u64, f64)>,
}

impl RecorderInner {
    /// Halves a series in place and doubles its stride — called when a
    /// series hits [`SERIES_CAP`], keeping memory bounded while the
    /// retained points stay evenly spaced.
    fn decimate<T: Copy>(series: &mut Vec<T>, stride: &mut u64) {
        let mut keep = 0;
        for i in (0..series.len()).step_by(2) {
            series[keep] = series[i];
            keep += 1;
        }
        series.truncate(keep);
        *stride *= 2;
    }
}

/// An [`EventSink`] that accumulates the two report series from a live
/// event stream: `QueueSampled` → queue-size-vs-results, `ResultReported`
/// → distance-vs-rank. Bounded memory via stride-doubling decimation; the
/// final result is always retained exactly.
pub struct RunRecorder {
    inner: Mutex<RecorderInner>,
}

impl Default for RunRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(RecorderInner {
                queue_series: Vec::new(),
                queue_stride: 1,
                queue_seen: 0,
                distance_by_rank: Vec::new(),
                rank_stride: 1,
                rank_seen: 0,
                events: 0,
                last_result: None,
            }),
        }
    }

    /// Moves the recorded series into `report` (and sets
    /// `events_recorded`). The final reported result is appended to the
    /// rank curve if decimation dropped it.
    pub fn fill_report(&self, report: &mut RunReport) {
        let mut inner = self.inner.lock().unwrap();
        report.events_recorded = inner.events;
        report.queue_series = std::mem::take(&mut inner.queue_series);
        let mut ranks = std::mem::take(&mut inner.distance_by_rank);
        if let Some(last) = inner.last_result {
            if ranks.last().is_none_or(|&(r, _)| r < last.0) {
                ranks.push(last);
            }
        }
        report.distance_by_rank = ranks;
    }

    /// Total events seen so far.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.inner.lock().unwrap().events
    }
}

impl EventSink for RunRecorder {
    fn emit(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap();
        inner.events += 1;
        match *event {
            Event::QueueSampled { len, results, .. } => {
                inner.queue_seen += 1;
                if inner.queue_seen.is_multiple_of(inner.queue_stride) {
                    inner.queue_series.push((results, len));
                    if inner.queue_series.len() >= SERIES_CAP {
                        let RecorderInner {
                            queue_series,
                            queue_stride,
                            ..
                        } = &mut *inner;
                        RecorderInner::decimate(queue_series, queue_stride);
                    }
                }
            }
            Event::ResultReported { rank, dist } => {
                inner.last_result = Some((rank, dist));
                inner.rank_seen += 1;
                if inner.rank_seen.is_multiple_of(inner.rank_stride) {
                    inner.distance_by_rank.push((rank, dist));
                    if inner.distance_by_rank.len() >= SERIES_CAP {
                        let RecorderInner {
                            distance_by_rank,
                            rank_stride,
                            ..
                        } = &mut *inner;
                        RecorderInner::decimate(distance_by_rank, rank_stride);
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        RunReport {
            label: "test run".into(),
            host: Some(HostInfo {
                nproc: 4,
                cpu_model: "Test CPU @ 2.0GHz".into(),
                build_profile: "release".into(),
            }),
            workload: vec![("n".into(), 10000.0), ("k".into(), 1000.0)],
            counters: vec![("distance_calcs".into(), 12345)],
            queue_series: vec![(0, 10), (100, 500), (200, 900), (300, 50)],
            distance_by_rank: vec![(1, 0.0), (2, 0.5), (10, 0.5), (100, 2.25)],
            metrics: vec![("seconds".into(), 1.25)],
            events_recorded: 42,
            profile: Some(ProfileSection {
                wall_seconds: 1.25,
                threads: 1,
                phases: vec![
                    PhaseRow {
                        phase: "queue_pop".into(),
                        calls: 5000,
                        sampled_calls: 120,
                        est_total_ns: 400_000_000.0,
                        max_ns: 90_000,
                        p50_ns: 70_000.0,
                        p95_ns: 85_000.0,
                        p99_ns: 89_000.0,
                    },
                    PhaseRow {
                        phase: "emit".into(),
                        calls: 1000,
                        sampled_calls: 60,
                        est_total_ns: 500_000_000.0,
                        max_ns: 600_000,
                        p50_ns: 480_000.0,
                        p95_ns: 550_000.0,
                        p99_ns: 590_000.0,
                    },
                ],
            }),
            calibration: Some(CalibrationSection {
                choice: "incremental".into(),
                forced: false,
                est_incremental: 123_000.0,
                est_bulk: 456_000.0,
                est_pairs: 1000.0,
                predicted_ratio: 123.0 / 456.0,
                observed_seconds: 1.25,
                observed_pairs: 1000,
            }),
            sessions: vec![
                SessionSection {
                    id: 0,
                    label: "s0".into(),
                    plan: "incremental".into(),
                    results: 400,
                    batches: 7,
                    cancelled: false,
                    counters: vec![("buf.accesses".into(), 900), ("pq.bytes_peak".into(), 4096)],
                },
                SessionSection {
                    id: 1,
                    label: String::new(),
                    plan: "bulk".into(),
                    results: 600,
                    batches: 3,
                    cancelled: true,
                    counters: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn report_json_roundtrip() {
        let r = sample_report();
        let json = r.to_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(back.label, r.label);
        assert_eq!(back.host, r.host);
        assert_eq!(back.counters, r.counters);
        assert_eq!(back.queue_series, r.queue_series);
        assert_eq!(back.distance_by_rank, r.distance_by_rank);
        assert_eq!(back.events_recorded, 42);
        assert_eq!(back.profile, r.profile);
        assert_eq!(back.calibration, r.calibration);
        assert_eq!(back.sessions, r.sessions);
        back.validate().expect("valid");
    }

    #[test]
    fn sessions_section_is_optional_and_validated() {
        let mut r = sample_report();
        r.sessions.clear();
        let json = r.to_json();
        assert!(!json.contains("\"sessions\""), "empty section omitted");
        let back = RunReport::from_json(&json).expect("parses");
        assert!(back.sessions.is_empty());

        let mut dup = sample_report();
        dup.sessions[1].id = dup.sessions[0].id;
        assert!(dup.validate().is_err(), "duplicate session id");

        let mut bad = sample_report();
        bad.sessions[0].plan = "quantum".into();
        assert!(bad.validate().is_err(), "bad session plan");
    }

    #[test]
    fn from_json_rejects_bad_schema_version() {
        let mut json = sample_report().to_json();
        json = json.replace("\"schema_version\": 2", "\"schema_version\": 99");
        assert!(RunReport::from_json(&json).is_err());
    }

    #[test]
    fn profile_conservation_and_validation() {
        let r = sample_report();
        let p = r.profile.as_ref().unwrap();
        // 0.9 s attributed of a 1.25 s wall clock: conserves, 72% coverage.
        assert!(p.conserves(0.25));
        assert!((p.attributed_fraction() - 0.72).abs() < 1e-9);

        let mut bad = r.clone();
        bad.profile.as_mut().unwrap().phases[0].phase = "warp_drive".into();
        assert!(bad.validate().is_err(), "unknown phase name");

        let mut bad = r.clone();
        bad.profile.as_mut().unwrap().phases[0].calls = 0;
        assert!(bad.validate().is_err(), "zero calls");

        let mut bad = r.clone();
        bad.profile.as_mut().unwrap().phases[0].sampled_calls = u64::MAX;
        assert!(bad.validate().is_err(), "sampled > calls");

        let mut bad = r.clone();
        bad.calibration.as_mut().unwrap().choice = "quantum".into();
        assert!(bad.validate().is_err(), "bad plan choice");

        let mut over = r;
        over.profile.as_mut().unwrap().phases[0].est_total_ns = 5e9;
        assert!(!over.profile.unwrap().conserves(0.25), "attribution > wall");
    }

    #[test]
    fn reports_without_profile_still_parse() {
        let mut r = sample_report();
        r.profile = None;
        r.calibration = None;
        let back = RunReport::from_json(&r.to_json()).expect("parses");
        assert!(back.profile.is_none());
        assert!(back.calibration.is_none());
        back.validate().expect("valid");
    }

    #[test]
    fn validate_catches_bad_series() {
        let mut r = sample_report();
        r.distance_by_rank = vec![(1, 0.5), (1, 0.6)];
        assert!(r.validate().is_err(), "duplicate rank");
        r.distance_by_rank = vec![(1, 0.5), (2, 0.1)];
        assert!(r.validate().is_err(), "decreasing distance");
        r.distance_by_rank = vec![(1, -0.5)];
        assert!(r.validate().is_err(), "negative distance");
        r.distance_by_rank.clear();
        r.host.as_mut().unwrap().nproc = 0;
        assert!(r.validate().is_err(), "zero nproc");
    }

    #[test]
    fn grow_then_drain_shape_check() {
        let mut r = sample_report();
        assert!(r.grow_then_drain());
        r.queue_series = vec![(0, 10), (1, 11), (2, 12)];
        assert!(!r.grow_then_drain(), "monotone growth is not a drain");
        r.queue_series.clear();
        assert!(!r.grow_then_drain());
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join(format!("sdj_obs_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"one");
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sparkline_renders_shapes() {
        assert_eq!(sparkline(&[], 10), "");
        let flat = sparkline(&[1.0, 1.0, 1.0], 3);
        assert_eq!(flat, "▁▁▁");
        let ramp = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(ramp, "▁▂▃▄▅▆▇█");
        let peak = sparkline(&[0.0, 10.0, 0.0], 3);
        assert_eq!(peak.chars().count(), 3);
        assert!(peak.contains('█'));
        // Width smaller than data downsamples, keeping peaks.
        let wide = sparkline(&[0.0, 0.0, 9.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(wide.chars().count(), 2);
        assert!(wide.contains('█'));
    }

    #[test]
    fn recorder_collects_and_decimates() {
        let rec = RunRecorder::new();
        for i in 0..10_000u64 {
            rec.emit(&Event::QueueSampled {
                pops: i,
                len: i % 100,
                results: i,
            });
            rec.emit(&Event::ResultReported {
                rank: i + 1,
                dist: i as f64 * 0.001,
            });
        }
        let mut report = RunReport::new("decimation");
        rec.fill_report(&mut report);
        assert!(report.queue_series.len() <= SERIES_CAP);
        assert!(report.distance_by_rank.len() <= SERIES_CAP);
        assert!(report.queue_series.len() > SERIES_CAP / 4);
        // The final result survives decimation.
        assert_eq!(report.distance_by_rank.last().unwrap().0, 10_000);
        assert_eq!(report.events_recorded, 20_000);
        report.validate().expect("valid after decimation");
    }
}
