//! A minimal JSON value type with a recursive-descent parser and a string
//! escaper — just enough to parse back the NDJSON event lines and
//! `RunReport` documents this crate writes, with zero dependencies.
//!
//! Not a general-purpose JSON library: numbers are `f64`, object keys keep
//! insertion order in a `Vec`, and the parser rejects anything deeper than
//! [`MAX_DEPTH`] to stay stack-safe on hostile input.

use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep insertion order and are not deduplicated.
    Obj(Vec<(String, JsonValue)>),
}

/// Error from [`JsonValue::parse`]: a message and the byte offset it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: &'static str,
    /// Byte offset into the input where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { msg, at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(ch);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so this is safe
                    // to do bytewise until the next ASCII special).
                    let start = self.pos;
                    self.pos += 1;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    // SAFETY-free: slicing a str's bytes on char boundaries;
                    // both ends stop at ASCII bytes, which are boundaries.
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Appends `s` to `out` with JSON string escaping applied (no quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse("{\"a\": [1, 2, {\"b\": \"c\"}], \"d\": null}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(JsonValue::parse(&deep).is_err());
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        assert_eq!(
            JsonValue::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("é\u{1F600}".into())
        );
        assert!(JsonValue::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn escape_into_escapes_specials() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn as_u64_accepts_only_nonnegative_integers() {
        assert_eq!(JsonValue::Num(7.0).as_u64(), Some(7));
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
    }
}
