//! Phase-attributed profiling spans: sampled, low-overhead self-time
//! accounting for the join pipeline.
//!
//! The paper's counters say *how much* work a run did (distance calcs, node
//! I/O, queue size); this module says *where the time went*. Every hot
//! region of the pipeline is labelled with a [`Phase`] and reports into a
//! [`SpanSet`] of lock-free per-phase accumulators (exact call count,
//! sampled self-time, max single-span self-time). Three cost tiers keep the
//! instrumented hot path near the "`Option`-is-`None` branch" design rule
//! of the crate:
//!
//! 1. **Unsampled span** (the common case): two array increments and a
//!    depth update — no clock read, no atomics (call counts are batched
//!    locally and flushed every [`CALL_FLUSH_EVERY`] spans and on drop).
//! 2. **Sampled span**: a top-level span is timed every `stride` calls of
//!    its phase; the stride starts at 1 and doubles every
//!    [`SAMPLES_PER_STRIDE`] samples up to [`STRIDE_MAX`], so short runs
//!    are measured exactly while long runs converge to a few clock reads
//!    per thousand spans. When a top-level span is sampled its whole
//!    subtree is timed, so nested phases stay attributable.
//! 3. **Leaf span** ([`LeafSpan`]): rare, expensive cross-component work
//!    (hybrid-queue spill/reload, buffer-pool fault I/O) is timed on every
//!    occurrence. Timed enclosing spans subtract the leaf time that
//!    accrued while they were open, so a sampled `QueuePush` does not
//!    double-bill a spill that happened inside it.
//!
//! **Self-time discipline**: a timed span records its *self* time — wall
//! time minus enclosed child spans (same [`SpanTimer`]) minus leaf-span
//! time that accrued while it was open. Summing per-phase self-times
//! therefore estimates total attributed time without double counting.
//!
//! **Estimator**: each sampled span is weighted by the stride that
//! selected it (a span sampled at stride `s` stands in for the `s` calls
//! since the previous sample), so `est_total_ns = Σ self_ns × stride` — a
//! Horvitz–Thompson estimate. This matters because span costs are not
//! i.i.d.: early calls (always sampled at stride 1, e.g. cold caches, a
//! stream's first blocking merge) are systematically costlier, and a
//! naive `sampled_ns × calls / sampled_calls` scale-up lets one such
//! outlier be multiplied by the sampling ratio. With per-sample weights
//! an outlier sampled at stride 1 contributes exactly once. Calls after
//! the last taken sample are not represented, so the estimate slightly
//! undercounts (bounded by `stride × per-call cost`).
//!
//! The subtraction of leaf time reads the shared accumulators, so in
//! multi-worker runs a concurrent worker's leaf span can be subtracted
//! from another worker's open span; self-times are clamped at ≥ 1 ns and
//! the error is bounded by total leaf time. Serial runs are exact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metrics::{Histogram, Registry};
use crate::ObsContext;

/// Pipeline phases a span can be attributed to.
///
/// Incremental engine: `QueuePop`, `QueuePush`, `Expand`, `Kernel`,
/// `Sweep`, `Emit`. Hybrid queue: `Spill`, `Reload`. Buffer pool: `Io`.
/// Bulk path: `Partition`, `Replicate`, `Sweep`, `Dedup`, `Merge`, `Emit`
/// (`Kernel` nests inside `Sweep`). Parallel executor: `Merge`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// Priority-queue pop (incremental engine dequeue).
    QueuePop = 0,
    /// Priority-queue push (staged-batch flush).
    QueuePush = 1,
    /// Hybrid queue migrating list-tier pairs to spill pages.
    Spill = 2,
    /// Hybrid queue reloading a spilled bucket.
    Reload = 3,
    /// Node-pair expansion (child MBR decode + enqueue staging).
    Expand = 4,
    /// Batched distance kernel (`mindist`/`maxdist` over an SoA block).
    Kernel = 5,
    /// Plane-sweep window scan (both-nodes expansion; bulk cell sweep).
    Sweep = 6,
    /// Ordered merge (worker-stream watermark merge; bulk run merge).
    Merge = 7,
    /// Buffer-pool page I/O (demand fault, retry loop, prefetch read).
    Io = 8,
    /// Result emission (distance sqrt, dedup bookkeeping, delivery).
    Emit = 9,
    /// Bulk path: leaf harvest and grid partitioning.
    Partition = 10,
    /// Bulk path: entry replication into overlapping cells.
    Replicate = 11,
    /// Duplicate filtering (bulk owner-cell test; semi-join seen-set).
    Dedup = 12,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASE_COUNT: usize = 13;

impl Phase {
    /// Every phase, in accumulator order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::QueuePop,
        Phase::QueuePush,
        Phase::Spill,
        Phase::Reload,
        Phase::Expand,
        Phase::Kernel,
        Phase::Sweep,
        Phase::Merge,
        Phase::Io,
        Phase::Emit,
        Phase::Partition,
        Phase::Replicate,
        Phase::Dedup,
    ];

    /// Stable snake_case name (used in reports and instrument names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueuePop => "queue_pop",
            Phase::QueuePush => "queue_push",
            Phase::Spill => "spill",
            Phase::Reload => "reload",
            Phase::Expand => "expand",
            Phase::Kernel => "kernel",
            Phase::Sweep => "sweep",
            Phase::Merge => "merge",
            Phase::Io => "io",
            Phase::Emit => "emit",
            Phase::Partition => "partition",
            Phase::Replicate => "replicate",
            Phase::Dedup => "dedup",
        }
    }

    /// Inverse of [`Phase::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free accumulator for one phase.
#[derive(Debug, Default)]
struct PhaseAcc {
    /// Exact number of spans entered (flushed in batches by timers).
    calls: AtomicU64,
    /// Number of spans whose self-time was measured.
    sampled_calls: AtomicU64,
    /// Sum of measured self-times, ns.
    sampled_ns: AtomicU64,
    /// Sum of `self_ns × stride` over samples (Horvitz–Thompson totals).
    weighted_ns: AtomicU64,
    /// Largest single measured self-time, ns.
    max_ns: AtomicU64,
}

/// Frozen per-phase accumulator state (see [`SpanSet::snapshot`]).
#[derive(Clone, Copy, Debug)]
pub struct PhaseSnapshot {
    /// Which phase.
    pub phase: Phase,
    /// Exact spans entered.
    pub calls: u64,
    /// Spans with a measured self-time.
    pub sampled_calls: u64,
    /// Sum of measured self-times, ns.
    pub sampled_ns: u64,
    /// Sum of `self_ns × stride` over samples (the estimated total).
    pub weighted_ns: u64,
    /// Largest single measured self-time, ns.
    pub max_ns: u64,
}

impl PhaseSnapshot {
    /// Estimated total self-time: each sample weighted by the stride that
    /// selected it (never less than the time actually measured). See the
    /// module docs for why this beats a uniform scale-up.
    #[must_use]
    pub fn est_total_ns(&self) -> f64 {
        self.weighted_ns.max(self.sampled_ns) as f64
    }
}

/// The shared per-phase accumulators of one run (held by the
/// [`Registry`]). All updates are relaxed atomics; multiple timers and
/// leaf spans on multiple threads feed one set.
#[derive(Debug, Default)]
pub struct SpanSet {
    phases: [PhaseAcc; PHASE_COUNT],
}

impl SpanSet {
    /// A fresh, empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn add_calls(&self, phase: usize, n: u64) {
        self.phases[phase].calls.fetch_add(n, Ordering::Relaxed);
    }

    fn record_sample(&self, phase: Phase, self_ns: u64, weight: u64) {
        let acc = &self.phases[phase as usize];
        acc.sampled_calls.fetch_add(1, Ordering::Relaxed);
        acc.sampled_ns.fetch_add(self_ns, Ordering::Relaxed);
        acc.weighted_ns
            .fetch_add(self_ns.saturating_mul(weight), Ordering::Relaxed);
        acc.max_ns.fetch_max(self_ns, Ordering::Relaxed);
    }

    /// Sum of always-timed leaf phases (`Spill` + `Reload` + `Io`), read
    /// by timed spans to subtract enclosed cross-component work.
    fn leaf_ns(&self) -> u64 {
        self.phases[Phase::Spill as usize]
            .sampled_ns
            .load(Ordering::Relaxed)
            + self.phases[Phase::Reload as usize]
                .sampled_ns
                .load(Ordering::Relaxed)
            + self.phases[Phase::Io as usize]
                .sampled_ns
                .load(Ordering::Relaxed)
    }

    /// True when no span of any phase has been entered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases
            .iter()
            .all(|p| p.calls.load(Ordering::Relaxed) == 0)
    }

    /// Frozen state of every phase that was entered at least once, in
    /// [`Phase::ALL`] order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<PhaseSnapshot> {
        Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let acc = &self.phases[phase as usize];
                let calls = acc.calls.load(Ordering::Relaxed);
                if calls == 0 {
                    return None;
                }
                Some(PhaseSnapshot {
                    phase,
                    calls,
                    sampled_calls: acc.sampled_calls.load(Ordering::Relaxed),
                    sampled_ns: acc.sampled_ns.load(Ordering::Relaxed),
                    weighted_ns: acc.weighted_ns.load(Ordering::Relaxed),
                    max_ns: acc.max_ns.load(Ordering::Relaxed),
                })
            })
            .collect()
    }
}

/// Whether and how spans are measured (see [`ObsContext::span_mode`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpanMode {
    /// No span accounting at all: timers and leaf spans are not created.
    Off,
    /// Exact call counts; self-times sampled with a doubling stride.
    #[default]
    Sampled,
    /// Every span timed (stride pinned at 1). For tests and short runs —
    /// the per-span clock reads are too expensive for the 2% gate on hot
    /// workloads.
    Always,
}

/// Spans flushed between batched call-count flushes.
const CALL_FLUSH_EVERY: u32 = 1024;
/// Samples taken at each stride before it doubles.
const SAMPLES_PER_STRIDE: u32 = 8;
/// Largest sampling stride.
const STRIDE_MAX: u32 = 4096;

/// One open, timed span.
#[derive(Debug)]
struct Frame {
    phase: Phase,
    start: Instant,
    /// Inclusive ns of already-closed direct children.
    child_ns: u64,
    /// Shared leaf-phase ns at frame open.
    leaf_base: u64,
    /// Leaf-phase ns already accounted inside closed children.
    child_leaf_ns: u64,
    /// Calls this sample stands in for (the stride that selected the
    /// top-level frame; descendants inherit it).
    weight: u64,
}

/// A per-component (per-worker) span timer: cheap unsampled counting, a
/// small stack of timed frames when a top-level span is sampled.
///
/// Not `Sync` by design — each instrumented component owns one and calls
/// [`SpanTimer::enter`] / [`SpanTimer::exit`] in matched pairs. All timers
/// of a run feed the registry's shared [`SpanSet`].
#[derive(Debug)]
pub struct SpanTimer {
    set: Arc<SpanSet>,
    registry: Arc<Registry>,
    always: bool,
    /// Spans until the next sample, per phase (top-level only).
    countdown: [u32; PHASE_COUNT],
    /// Current sampling stride, per phase.
    stride: [u32; PHASE_COUNT],
    /// Samples taken at the current stride, per phase.
    at_stride: [u32; PHASE_COUNT],
    /// Locally batched call counts (flushed to the set periodically).
    pending_calls: [u32; PHASE_COUNT],
    pending_total: u32,
    /// Open-span depth, timed or not.
    depth: u32,
    /// Timed frames only; empty while inside an unsampled subtree.
    frames: Vec<Frame>,
    /// Lazily created `span.<phase>.ns` histograms (sampled self-times).
    hists: [Option<Arc<Histogram>>; PHASE_COUNT],
}

impl SpanTimer {
    /// A timer over an explicit set/registry pair.
    #[must_use]
    pub fn new(set: Arc<SpanSet>, registry: Arc<Registry>, mode: SpanMode) -> Self {
        Self {
            set,
            registry,
            always: mode == SpanMode::Always,
            countdown: [1; PHASE_COUNT],
            stride: [1; PHASE_COUNT],
            at_stride: [0; PHASE_COUNT],
            pending_calls: [0; PHASE_COUNT],
            pending_total: 0,
            depth: 0,
            frames: Vec::with_capacity(8),
            hists: std::array::from_fn(|_| None),
        }
    }

    /// A timer wired to a context's registry, `None` when the context has
    /// spans off.
    #[must_use]
    pub fn from_context(ctx: &ObsContext) -> Option<Self> {
        if ctx.span_mode == SpanMode::Off {
            return None;
        }
        Some(Self::new(
            Arc::clone(ctx.registry.spans()),
            Arc::clone(&ctx.registry),
            ctx.span_mode,
        ))
    }

    /// Opens a span. Every call must be matched by an [`SpanTimer::exit`]
    /// with the same phase before the enclosing span (if any) exits.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        let p = phase as usize;
        self.pending_calls[p] += 1;
        self.pending_total += 1;
        if self.pending_total >= CALL_FLUSH_EVERY {
            self.flush_calls();
        }
        if self.depth > 0 && self.frames.is_empty() {
            // Inside an unsampled top-level span: count only.
            self.depth += 1;
            return;
        }
        let weight = if let Some(top) = self.frames.first() {
            // Descendant of a sampled top-level span: always timed, and it
            // stands in for the same share of calls as its ancestor.
            top.weight
        } else {
            let w = self.decide_sample(p);
            if w == 0 {
                self.depth += 1;
                return;
            }
            w
        };
        self.depth += 1;
        let leaf_base = self.set.leaf_ns();
        self.frames.push(Frame {
            phase,
            start: Instant::now(),
            child_ns: 0,
            leaf_base,
            child_leaf_ns: 0,
            weight,
        });
    }

    /// Closes the innermost span (which must be of `phase`).
    #[inline]
    pub fn exit(&mut self, phase: Phase) {
        debug_assert!(self.depth > 0, "span exit({phase}) with no open span");
        self.depth = self.depth.saturating_sub(1);
        if self.frames.is_empty() {
            return; // unsampled span: nothing to time
        }
        let Some(frame) = self.frames.pop() else {
            return;
        };
        debug_assert_eq!(
            frame.phase, phase,
            "span exit order mismatch: open {}, exiting {}",
            frame.phase, phase
        );
        let inclusive = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let leaf_total = self.set.leaf_ns().saturating_sub(frame.leaf_base);
        let own_leaf = leaf_total.saturating_sub(frame.child_leaf_ns);
        // Clamp at 1 ns: the clock can quantize a short span to zero, and
        // the conservation tests treat "called but zero time" as a bug.
        let self_ns = inclusive
            .saturating_sub(frame.child_ns)
            .saturating_sub(own_leaf)
            .max(1);
        self.set.record_sample(frame.phase, self_ns, frame.weight);
        self.hist(frame.phase as usize).record(self_ns as f64);
        if let Some(parent) = self.frames.last_mut() {
            parent.child_ns += inclusive;
            parent.child_leaf_ns += leaf_total;
        }
    }

    /// Runs `f` inside a span of `phase`.
    #[inline]
    pub fn scope<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        self.enter(phase);
        let r = f();
        self.exit(phase);
        r
    }

    /// Whether a top-level span of phase index `p` should be timed,
    /// advancing the stride schedule. Returns the sample's weight — the
    /// number of calls it stands in for (the stride that selected it) —
    /// or 0 when the span is not sampled.
    fn decide_sample(&mut self, p: usize) -> u64 {
        if self.always {
            return 1;
        }
        self.countdown[p] -= 1;
        if self.countdown[p] > 0 {
            return 0;
        }
        // The countdown was armed with the stride current at the previous
        // sample, so that stride is the window this sample represents.
        let weight = u64::from(self.stride[p]);
        self.at_stride[p] += 1;
        if self.at_stride[p] >= SAMPLES_PER_STRIDE {
            self.at_stride[p] = 0;
            self.stride[p] = (self.stride[p] * 2).min(STRIDE_MAX);
        }
        self.countdown[p] = self.stride[p];
        weight
    }

    fn hist(&mut self, p: usize) -> &Arc<Histogram> {
        if self.hists[p].is_none() {
            let name = format!("span.{}.ns", Phase::ALL[p].name());
            self.hists[p] = Some(self.registry.histogram(&name));
        }
        self.hists[p].as_ref().expect("histogram just created")
    }

    /// Flushes locally batched call counts into the shared set. Called
    /// automatically every [`CALL_FLUSH_EVERY`] spans and on drop.
    pub fn flush_calls(&mut self) {
        for (p, pending) in self.pending_calls.iter_mut().enumerate() {
            if *pending > 0 {
                self.set.add_calls(p, u64::from(*pending));
                *pending = 0;
            }
        }
        self.pending_total = 0;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.flush_calls();
    }
}

/// An always-timed recorder for one rare, expensive phase (spill, reload,
/// pool fault I/O). Unlike [`SpanTimer`] spans, leaf spans are measured on
/// every occurrence and may be recorded from any thread; timed spans that
/// are open while a leaf records subtract its time (see module docs).
#[derive(Clone, Debug)]
pub struct LeafSpan {
    set: Arc<SpanSet>,
    phase: Phase,
    hist: Arc<Histogram>,
}

impl LeafSpan {
    /// A leaf recorder for `phase` on a context's registry, `None` when
    /// the context has spans off.
    #[must_use]
    pub fn from_context(ctx: &ObsContext, phase: Phase) -> Option<Self> {
        if ctx.span_mode == SpanMode::Off {
            return None;
        }
        Some(Self {
            set: Arc::clone(ctx.registry.spans()),
            hist: ctx.registry.histogram(&format!("span.{}.ns", phase.name())),
            phase,
        })
    }

    /// Records one occurrence of `ns` nanoseconds (clamped to ≥ 1).
    pub fn record_ns(&self, ns: u64) {
        let ns = ns.max(1);
        self.set.add_calls(self.phase as usize, 1);
        self.set.record_sample(self.phase, ns, 1);
        self.hist.record(ns as f64);
    }

    /// Times `f` and records its duration.
    #[inline]
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.record_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(mode: SpanMode) -> (SpanTimer, Arc<SpanSet>, Arc<Registry>) {
        let registry = Arc::new(Registry::new());
        let set = Arc::clone(registry.spans());
        (
            SpanTimer::new(Arc::clone(&set), Arc::clone(&registry), mode),
            set,
            registry,
        )
    }

    fn snap(set: &SpanSet, phase: Phase) -> PhaseSnapshot {
        set.snapshot()
            .into_iter()
            .find(|s| s.phase == phase)
            .unwrap_or_else(|| panic!("phase {phase} not in snapshot"))
    }

    #[test]
    fn phase_names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn exact_calls_and_positive_time_in_always_mode() {
        let (mut t, set, _r) = timer(SpanMode::Always);
        for _ in 0..10 {
            t.scope(Phase::QueuePop, || std::hint::black_box(1 + 1));
        }
        t.flush_calls();
        let s = snap(&set, Phase::QueuePop);
        assert_eq!(s.calls, 10);
        assert_eq!(s.sampled_calls, 10);
        assert!(s.sampled_ns > 0, "always-mode spans must measure > 0 ns");
        assert!(s.max_ns > 0);
    }

    #[test]
    fn sampled_mode_counts_all_but_times_few() {
        let (mut t, set, _r) = timer(SpanMode::Sampled);
        let n = 100_000u64;
        for _ in 0..n {
            t.enter(Phase::Kernel);
            t.exit(Phase::Kernel);
        }
        t.flush_calls();
        let s = snap(&set, Phase::Kernel);
        assert_eq!(s.calls, n);
        assert!(s.sampled_calls >= 1);
        // 32 samples per stride, strides 1,2,4,...,4096: far fewer than n.
        assert!(
            s.sampled_calls < n / 10,
            "stride doubling should sample sparsely, got {} of {}",
            s.sampled_calls,
            n
        );
        assert!(s.est_total_ns() >= s.sampled_ns as f64);
    }

    #[test]
    fn outlier_first_call_is_not_extrapolated() {
        // The first call of a phase is always sampled (stride 1). If it is
        // a one-off outlier (cold cache, blocking first merge), a uniform
        // calls/sampled_calls scale-up would multiply it by the sampling
        // ratio; the stride-weighted estimator charges it exactly once.
        let (mut t, set, _r) = timer(SpanMode::Sampled);
        t.scope(Phase::Merge, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        for _ in 0..10_000 {
            t.enter(Phase::Merge);
            t.exit(Phase::Merge);
        }
        t.flush_calls();
        let s = snap(&set, Phase::Merge);
        assert_eq!(s.calls, 10_001);
        let est = s.est_total_ns();
        let naive = s.sampled_ns as f64 * (s.calls as f64 / s.sampled_calls as f64);
        assert!(
            est < naive / 2.0,
            "weighted estimate ({est:.0} ns) should be far below the naive \
             scale-up ({naive:.0} ns) when the outlier sat at stride 1"
        );
        // The outlier itself is still fully charged.
        assert!(
            est >= 5_000_000.0,
            "est {est:.0} ns must include the 5 ms outlier"
        );
    }

    #[test]
    fn nested_spans_charge_self_time() {
        let (mut t, set, _r) = timer(SpanMode::Always);
        let start = Instant::now();
        t.enter(Phase::Expand);
        t.scope(Phase::Kernel, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        t.exit(Phase::Expand);
        let wall = start.elapsed().as_nanos() as u64;
        t.flush_calls();
        let expand = snap(&set, Phase::Expand);
        let kernel = snap(&set, Phase::Kernel);
        assert!(
            kernel.sampled_ns >= 4_000_000,
            "sleep goes to the kernel span"
        );
        assert!(
            expand.sampled_ns < kernel.sampled_ns,
            "parent self-time excludes the child ({} vs {})",
            expand.sampled_ns,
            kernel.sampled_ns
        );
        assert!(expand.sampled_ns + kernel.sampled_ns <= wall + 1_000);
    }

    #[test]
    fn timed_spans_subtract_enclosed_leaf_time() {
        let registry = Arc::new(Registry::new());
        let set = Arc::clone(registry.spans());
        let mut t = SpanTimer::new(Arc::clone(&set), Arc::clone(&registry), SpanMode::Always);
        let leaf = LeafSpan {
            set: Arc::clone(&set),
            phase: Phase::Spill,
            hist: registry.histogram("span.spill.ns"),
        };
        t.enter(Phase::QueuePush);
        leaf.time(|| std::thread::sleep(std::time::Duration::from_millis(5)));
        t.exit(Phase::QueuePush);
        t.flush_calls();
        let push = snap(&set, Phase::QueuePush);
        let spill = snap(&set, Phase::Spill);
        assert!(spill.sampled_ns >= 4_000_000);
        assert!(
            push.sampled_ns < spill.sampled_ns / 2,
            "push self-time must exclude the spill ({} vs {})",
            push.sampled_ns,
            spill.sampled_ns
        );
    }

    #[test]
    fn unsampled_subtree_still_counts_children() {
        let (mut t, set, _r) = timer(SpanMode::Sampled);
        // First span of a phase is always sampled; drain the sampled one,
        // then run an unsampled tree and check counts still accrue.
        for _ in 0..2 {
            t.enter(Phase::Expand);
            t.enter(Phase::Kernel);
            t.exit(Phase::Kernel);
            t.exit(Phase::Expand);
        }
        t.flush_calls();
        assert_eq!(snap(&set, Phase::Expand).calls, 2);
        assert_eq!(snap(&set, Phase::Kernel).calls, 2);
    }

    #[test]
    fn call_counts_flush_on_drop() {
        let registry = Arc::new(Registry::new());
        let set = Arc::clone(registry.spans());
        {
            let mut t = SpanTimer::new(Arc::clone(&set), Arc::clone(&registry), SpanMode::Sampled);
            t.enter(Phase::Merge);
            t.exit(Phase::Merge);
        }
        assert_eq!(snap(&set, Phase::Merge).calls, 1);
    }

    #[test]
    fn leaf_span_records_every_call() {
        let registry = Arc::new(Registry::new());
        let set = Arc::clone(registry.spans());
        let leaf = LeafSpan {
            set: Arc::clone(&set),
            phase: Phase::Io,
            hist: registry.histogram("span.io.ns"),
        };
        for _ in 0..5 {
            leaf.record_ns(100);
        }
        let s = snap(&set, Phase::Io);
        assert_eq!(s.calls, 5);
        assert_eq!(s.sampled_calls, 5);
        assert_eq!(s.sampled_ns, 500);
        assert_eq!(s.max_ns, 100);
        assert_eq!(registry.histogram("span.io.ns").count(), 5);
    }

    #[test]
    fn snapshot_skips_untouched_phases() {
        let (mut t, set, _r) = timer(SpanMode::Always);
        t.scope(Phase::Emit, || {});
        t.flush_calls();
        let snaps = set.snapshot();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].phase, Phase::Emit);
        assert!(!set.is_empty());
    }
}
