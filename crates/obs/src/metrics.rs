//! Lock-free named instruments: counters, gauges, and fixed-bucket
//! log-scale histograms, collected in a [`Registry`] and sampled into
//! point-in-time [`Snapshot`]s.
//!
//! Instruments are `Arc`-shared atomics. Components look them up (or
//! create them) once, outside the hot path, then update them with plain
//! atomic ops — the registry's internal lock is touched only at
//! registration and snapshot time, never per update.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::escape_into;
use crate::span::{PhaseSnapshot, SpanSet};

/// Monotone atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed instantaneous value (queue depth, tier occupancy ...) that also
/// tracks its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value, updating the high-water mark.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`, updating the high-water mark.
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set (0 if never positive).
    #[must_use]
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i` covers binary orders of
/// magnitude: values are bucketed by floor(log2(v)) clamped into range, so
/// the whole f64 range fits 64 buckets with no per-record branching loops.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Exponent bias: bucket 32 holds values in `[1, 2)`. Buckets below hold
/// fractions down to `2^-32`; everything smaller (and zero) lands in
/// bucket 0, everything `>= 2^31` in bucket 63.
const BUCKET_BIAS: i32 = 32;

/// Lock-free log-scale histogram over non-negative `f64` samples.
///
/// Each bucket is an atomic count; the sum is kept as f64 bits updated via
/// CAS. Negative and NaN samples are counted separately as invalid rather
/// than silently dropped.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    invalid: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            invalid: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: its binary exponent, biased and clamped.
    #[must_use]
    pub fn bucket_of(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            // Zero and subnormal-ish go low; +inf clamps high below via
            // the exponent extraction only for finite values, so handle
            // inf explicitly.
            if v.is_infinite() && v > 0.0 {
                return HISTOGRAM_BUCKETS - 1;
            }
            return 0;
        }
        // IEEE-754 exponent field: bits 52..63 (biased by 1023).
        let exp = ((v.to_bits() >> 52) & 0x7ff) as i32 - 1023;
        (exp + BUCKET_BIAS).clamp(0, HISTOGRAM_BUCKETS as i32 - 1) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` covered by bucket `i`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let lo = if i == 0 {
            0.0
        } else {
            2f64.powi(i as i32 - BUCKET_BIAS)
        };
        let hi = if i >= HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            2f64.powi(i as i32 + 1 - BUCKET_BIAS)
        };
        (lo, hi)
    }

    /// Records one sample. Negative or NaN samples count as invalid.
    pub fn record(&self, v: f64) {
        if v.is_nan() || v < 0.0 {
            self.invalid.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // CAS-add into the f64 sum. Contention here is light (one CAS per
        // sample); overhead-sensitive callers sample rather than record
        // every value.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total valid samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of valid samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Rejected (negative / NaN) samples.
    #[must_use]
    pub fn invalid(&self) -> u64 {
        self.invalid.load(Ordering::Relaxed)
    }

    /// Point-in-time summary (count, sum, mean, bucket-resolution
    /// quantiles).
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        let count: u64 = buckets.iter().sum();
        HistogramSummary {
            count,
            sum: self.sum(),
            invalid: self.invalid(),
            buckets,
        }
    }
}

/// A frozen copy of a histogram's state.
#[derive(Clone, Debug)]
pub struct HistogramSummary {
    /// Valid samples recorded.
    pub count: u64,
    /// Sum of valid samples.
    pub sum: f64,
    /// Rejected samples.
    pub invalid: u64,
    /// Per-bucket counts (see [`Histogram::bucket_bounds`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSummary {
    /// Mean of valid samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Quantile estimate at bucket resolution: the upper bound of the
    /// bucket containing the `q`-th sample (q in `[0, 1]`). Within a
    /// bucket the true value may be up to 2× lower.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let (lo, hi) = Histogram::bucket_bounds(i);
                return if hi.is_finite() { hi } else { lo };
            }
        }
        let (lo, _) = Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1);
        lo
    }

    /// Median estimate (see [`HistogramSummary::quantile`]).
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

/// A named-instrument registry. Look-up-or-create is locked; the returned
/// `Arc`s are then updated lock-free. Also owns the run's shared
/// [`SpanSet`] of per-phase profiling accumulators.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
    spans: Arc<SpanSet>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The run's shared per-phase span accumulators.
    #[must_use]
    pub fn spans(&self) -> &Arc<SpanSet> {
        &self.spans
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, c)) = inner.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        inner.counters.push((name.to_string(), Arc::clone(&c)));
        c
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, g)) = inner.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.push((name.to_string(), Arc::clone(&g)));
        g
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, h)) = inner.histograms.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.push((name.to_string(), Arc::clone(&h)));
        h
    }

    /// Freezes every instrument into a [`Snapshot`], names sorted.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64, i64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get(), g.max()))
            .collect();
        let mut histograms: Vec<(String, HistogramSummary)> = inner
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.summary()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
            spans: self.spans.snapshot(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A point-in-time copy of every instrument in a registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value, high_water)`, sorted by name.
    pub gauges: Vec<(String, i64, i64)>,
    /// `(name, summary)`, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Per-phase span accumulators (phases entered at least once), in
    /// [`crate::Phase::ALL`] order.
    pub spans: Vec<PhaseSnapshot>,
}

impl Snapshot {
    /// Counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge `(value, high_water)` by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<(i64, i64)> {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, m)| (*v, *m))
    }

    /// Histogram summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON object (counters and gauges exact;
    /// histograms as count/sum/mean/p50/p95/p99; span phases as
    /// calls/sampled_calls/sampled_ns/weighted_ns/max_ns/est_total_ns).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (n, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, n);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (n, v, m)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, n);
            out.push_str("\":{\"value\":");
            out.push_str(&v.to_string());
            out.push_str(",\"max\":");
            out.push_str(&m.to_string());
            out.push('}');
        }
        out.push_str("},\"histograms\":{");
        for (i, (n, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, n);
            out.push_str(&format!(
                "\":{{\"count\":{},\"sum\":{:.6},\"mean\":{:.6},\"p50\":{:.6},\"p95\":{:.6},\"p99\":{:.6}}}",
                h.count,
                h.sum,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            ));
        }
        out.push_str("},\"spans\":{");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, s.phase.name());
            out.push_str(&format!(
                "\":{{\"calls\":{},\"sampled_calls\":{},\"sampled_ns\":{},\"weighted_ns\":{},\"max_ns\":{},\"est_total_ns\":{:.0}}}",
                s.calls, s.sampled_calls, s.sampled_ns, s.weighted_ns, s.max_ns,
                s.est_total_ns()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(g.max(), 10);
        g.set(12);
        assert_eq!(g.max(), 12);
    }

    #[test]
    fn histogram_buckets_by_binary_magnitude() {
        assert_eq!(Histogram::bucket_of(1.0), 32);
        assert_eq!(Histogram::bucket_of(1.99), 32);
        assert_eq!(Histogram::bucket_of(2.0), 33);
        assert_eq!(Histogram::bucket_of(0.5), 31);
        assert_eq!(Histogram::bucket_of(0.0), 0);
        assert_eq!(Histogram::bucket_of(f64::INFINITY), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_of(1e-300), 0);
        // Bucket bounds bracket their members.
        for v in [0.3, 1.0, 7.5, 1024.0] {
            let i = Histogram::bucket_of(v);
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn histogram_summary_and_quantiles() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0); // bucket 32, upper bound 2.0
        }
        for _ in 0..10 {
            h.record(100.0); // bucket 38, upper bound 128.0
        }
        h.record(-1.0);
        h.record(f64::NAN);
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.invalid, 2);
        assert!((s.sum - 1090.0).abs() < 1e-9);
        assert!((s.mean() - 10.9).abs() < 1e-9);
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.95), 128.0);
    }

    #[test]
    fn registry_dedupes_by_name_and_snapshots() {
        let r = Registry::new();
        let c1 = r.counter("join.results");
        let c2 = r.counter("join.results");
        c1.inc();
        c2.inc();
        r.gauge("pq.tier.heap").set(5);
        r.histogram("join.pop_distance").record(1.5);

        let snap = r.snapshot();
        assert_eq!(snap.counter("join.results"), Some(2));
        assert_eq!(snap.gauge("pq.tier.heap"), Some((5, 5)));
        assert_eq!(snap.histogram("join.pop_distance").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);

        let json = snap.to_json();
        let v = crate::json::JsonValue::parse(&json).expect("snapshot json parses");
        assert_eq!(
            v.get("counters").unwrap().get("join.results").unwrap(),
            &crate::json::JsonValue::Num(2.0)
        );
    }

    #[test]
    fn concurrent_histogram_updates_do_not_lose_samples() {
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        h.record((t * 1000 + i) as f64 * 0.001);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        let total: u64 = h.summary().buckets.iter().sum();
        assert_eq!(total, 4000);
    }
}
