//! Live instrumentation for the incremental distance join.
//!
//! The paper's entire evaluation (Table 1, Figures 6–10) is built on
//! observing the join's *internal* behaviour — distance calculations, queue
//! size over time, node I/O — but an end-of-run counter struct cannot show
//! how those quantities evolve while a join streams results. This crate
//! provides the three layers that make a run observable as it happens:
//!
//! 1. **Events** ([`Event`], [`EventSink`]): typed, allocation-free event
//!    records emitted from the engine's hot paths. Sinks include a no-op
//!    default ([`NoopSink`]), a bounded in-memory ring ([`RingRecorder`]),
//!    an NDJSON writer ([`NdjsonWriter`]), and a tee ([`TeeSink`]).
//! 2. **Metrics** ([`Registry`]): lock-free named instruments — atomic
//!    [`Counter`]s, [`Gauge`]s and fixed-bucket log-scale [`Histogram`]s —
//!    sampled into point-in-time [`Snapshot`]s.
//! 3. **Reports** ([`RunReport`]): a schema-versioned, machine-readable JSON
//!    document describing one run (counters, queue-size and distance-vs-rank
//!    series, host info), written atomically and renderable as text
//!    sparklines that reproduce the *shape* of the paper's Figures 6–8.
//!
//! Like the `rand`/`proptest` shims, the crate is vendored in-tree and has
//! zero registry dependencies; everything is `std`. The design rule
//! throughout is that the *uninstrumented* hot path pays only an
//! `Option`-is-`None` branch: all instruments are created up front, all
//! event payloads are `Copy`, and nothing allocates unless a sink that
//! stores or writes is attached.

pub mod event;
pub mod json;
pub mod metrics;
pub mod report;
pub mod sink;
pub mod span;

pub use event::{Event, PairKind, PlanPath, Side, Tier};
pub use json::JsonValue;
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, Registry, Snapshot};
pub use report::{
    sparkline, write_atomic, CalibrationSection, HostInfo, PhaseRow, ProfileSection, RunRecorder,
    RunReport, SessionSection,
};
pub use sink::{EventCounts, EventSink, NdjsonWriter, NoopSink, RingRecorder, TeeSink};
pub use span::{LeafSpan, Phase, PhaseSnapshot, SpanMode, SpanSet, SpanTimer, PHASE_COUNT};

use std::sync::Arc;

/// Everything an instrumented component needs, bundled for cheap cloning:
/// the event sink, the metrics registry, and the sampling cadences.
///
/// A `None`-shaped context does not exist on purpose — components store
/// `Option<ObsContext>` (or a handle derived from one) and the disabled
/// path is a single branch.
#[derive(Clone)]
pub struct ObsContext {
    /// Destination for typed events. Shared by every component of a run.
    pub sink: Arc<dyn EventSink>,
    /// Named-instrument registry shared by every component of a run.
    pub registry: Arc<Registry>,
    /// Emit a `QueueSampled` event every this many queue pops.
    pub pop_sample_every: u64,
    /// Emit a `ResultReported` event every this many results (1 = all).
    pub result_sample_every: u64,
    /// Also emit the high-frequency per-operation events (`PairPopped`,
    /// `NodeExpanded`). Off by default: they are meant for ring-buffer
    /// debugging, not for long NDJSON logs.
    pub detail: bool,
    /// Phase-span accounting mode (see [`span::SpanMode`]). Sampled by
    /// default — exact per-phase call counts, stride-sampled self-times.
    pub span_mode: SpanMode,
}

impl ObsContext {
    /// A context over the given sink with a fresh registry and default
    /// cadences (queue sampled every 128 pops, every result reported).
    #[must_use]
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        Self {
            sink,
            registry: Arc::new(Registry::new()),
            pop_sample_every: 128,
            result_sample_every: 1,
            detail: false,
            span_mode: SpanMode::default(),
        }
    }

    /// A context whose sink discards everything — used to measure the
    /// instrumentation overhead itself.
    #[must_use]
    pub fn noop() -> Self {
        Self::new(Arc::new(NoopSink))
    }

    /// Sets the queue-sampling cadence (pops per `QueueSampled` event).
    #[must_use]
    pub fn with_pop_sample_every(mut self, every: u64) -> Self {
        self.pop_sample_every = every.max(1);
        self
    }

    /// Sets the result-sampling cadence (results per `ResultReported`).
    #[must_use]
    pub fn with_result_sample_every(mut self, every: u64) -> Self {
        self.result_sample_every = every.max(1);
        self
    }

    /// Enables the high-frequency per-operation events.
    #[must_use]
    pub fn with_detail(mut self, detail: bool) -> Self {
        self.detail = detail;
        self
    }

    /// Sets the phase-span accounting mode.
    #[must_use]
    pub fn with_span_mode(mut self, mode: SpanMode) -> Self {
        self.span_mode = mode;
        self
    }
}

impl std::fmt::Debug for ObsContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsContext")
            .field("pop_sample_every", &self.pop_sample_every)
            .field("result_sample_every", &self.result_sample_every)
            .field("detail", &self.detail)
            .field("span_mode", &self.span_mode)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builders_clamp_cadence() {
        let ctx = ObsContext::noop()
            .with_pop_sample_every(0)
            .with_result_sample_every(0)
            .with_detail(true);
        assert_eq!(ctx.pop_sample_every, 1);
        assert_eq!(ctx.result_sample_every, 1);
        assert!(ctx.detail);
    }
}
