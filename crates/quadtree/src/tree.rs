//! The PR quadtree proper.

use sdj_core::index::{IndexEntry, IndexNode, NodeId, SpatialIndex};
use sdj_geom::{Point, Rect};
use sdj_rtree::ObjectId;
use sdj_storage::{BufferPool, PageId, Pager, PoolStats, Result};

use crate::node::{
    fan_out, leaf_capacity, min_internal_page, quadrant_of, quadrant_region, QuadNode, QuadNodeKind,
};

/// Construction parameters of a [`PrQuadtree`].
#[derive(Clone, Copy, Debug)]
pub struct QuadtreeConfig<const D: usize> {
    /// The fixed region the root covers; every inserted point must fall
    /// inside it.
    pub bounds: Rect<D>,
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer-pool frames.
    pub buffer_frames: usize,
    /// Depth at which splitting stops and leaves chain overflow pages
    /// instead (bounds the trie for duplicate-heavy data).
    pub max_depth: u8,
}

impl<const D: usize> QuadtreeConfig<D> {
    /// A configuration over `bounds` with 1K pages and defaults matching the
    /// R-tree environment.
    #[must_use]
    pub fn new(bounds: Rect<D>) -> Self {
        Self {
            bounds,
            page_size: 1024,
            buffer_frames: 256,
            max_depth: 48,
        }
    }

    /// A small-page configuration for tests (low leaf capacity → deep trees).
    #[must_use]
    pub fn small(bounds: Rect<D>, leaf_points: usize) -> Self {
        let page = (crate::node::HEADER_SIZE
            + crate::node::region_size::<D>()
            + 4
            + leaf_points * crate::node::point_entry_size::<D>())
        .max(min_internal_page::<D>());
        Self {
            bounds,
            page_size: page,
            buffer_frames: 64,
            max_depth: 48,
        }
    }
}

/// A paged point-region quadtree (`2^D`-ary trie over space).
pub struct PrQuadtree<const D: usize> {
    pool: BufferPool,
    config: QuadtreeConfig<D>,
    root: PageId,
    len: usize,
    leaf_cap: usize,
}

impl<const D: usize> std::fmt::Debug for PrQuadtree<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrQuadtree")
            .field("len", &self.len)
            .field("leaf_cap", &self.leaf_cap)
            .finish()
    }
}

impl<const D: usize> PrQuadtree<D> {
    /// Creates an empty quadtree.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (page too small, empty
    /// bounds).
    #[must_use]
    pub fn new(config: QuadtreeConfig<D>) -> Self {
        assert!(
            config.bounds.is_finite() && config.bounds.area() > 0.0,
            "quadtree bounds must be a finite, non-degenerate region"
        );
        assert!(
            config.page_size >= min_internal_page::<D>(),
            "page size {} cannot hold a {}-child internal node",
            config.page_size,
            fan_out::<D>()
        );
        let leaf_cap = leaf_capacity::<D>(config.page_size);
        assert!(leaf_cap >= 1, "page size too small for one point");
        let pool = BufferPool::new(Pager::new(config.page_size), config.buffer_frames);
        let root = pool.allocate();
        let tree = Self {
            pool,
            config,
            root,
            len: 0,
            leaf_cap,
        };
        tree.write_node(root, &QuadNode::empty_leaf(0, config.bounds))
            .expect("writing the empty root cannot fail");
        tree
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured bounds.
    #[must_use]
    pub fn bounds(&self) -> Rect<D> {
        self.config.bounds
    }

    /// Leaf capacity per page.
    #[must_use]
    pub fn leaf_capacity(&self) -> usize {
        self.leaf_cap
    }

    /// Buffer-pool counters (misses = node I/O).
    #[must_use]
    pub fn io_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Installs (or clears) a fault injector on the tree's simulated disk
    /// (chaos testing); see the R-tree's method of the same name.
    pub fn set_fault_injector(&self, injector: Option<std::sync::Arc<sdj_storage::FaultInjector>>) {
        self.pool.set_fault_injector(injector);
    }

    /// Bounds how many times the buffer pool retries an operation that
    /// failed with a transient fault (0 = fail on first fault).
    pub fn set_retry_limit(&self, limit: u32) {
        self.pool.set_retry_limit(limit);
    }

    pub(crate) fn pool(&self) -> &BufferPool {
        &self.pool
    }

    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    pub(crate) fn config(&self) -> &QuadtreeConfig<D> {
        &self.config
    }

    /// Reassembles a tree from its persisted parts (see `persist`).
    pub(crate) fn from_parts(
        pool: BufferPool,
        config: QuadtreeConfig<D>,
        root: PageId,
        len: usize,
    ) -> Self {
        Self {
            pool,
            config,
            root,
            len,
            leaf_cap: leaf_capacity::<D>(config.page_size),
        }
    }

    fn read_raw(&self, page: PageId) -> Result<QuadNode<D>> {
        self.pool.with_page(page, QuadNode::decode)?
    }

    fn write_node(&self, page: PageId, node: &QuadNode<D>) -> Result<()> {
        self.pool.update(page, |buf| {
            buf.fill(0);
            node.encode(buf)
        })?
    }

    /// Inserts a point.
    ///
    /// # Panics
    /// Panics if the point lies outside the configured bounds.
    pub fn insert(&mut self, oid: ObjectId, point: Point<D>) -> Result<()> {
        assert!(
            self.config.bounds.contains_point(&point),
            "point outside quadtree bounds"
        );
        self.insert_into(self.root, oid, point)?;
        self.len += 1;
        Ok(())
    }

    fn insert_into(&mut self, page: PageId, oid: ObjectId, point: Point<D>) -> Result<()> {
        let mut node = self.read_raw(page)?;
        match &mut node.kind {
            QuadNodeKind::Internal { children } => {
                let q = quadrant_of(&node.region, &point);
                match children[q] {
                    Some(child) => self.insert_into(child, oid, point),
                    None => {
                        let child = self.pool.allocate();
                        let mut leaf =
                            QuadNode::empty_leaf(node.depth + 1, quadrant_region(&node.region, q));
                        let QuadNodeKind::Leaf { points, .. } = &mut leaf.kind else {
                            unreachable!()
                        };
                        points.push((oid, point));
                        self.write_node(child, &leaf)?;
                        children[q] = Some(child);
                        self.write_node(page, &node)
                    }
                }
            }
            QuadNodeKind::Leaf { points, next } => {
                if points.len() < self.leaf_cap {
                    points.push((oid, point));
                    return self.write_node(page, &node);
                }
                if node.depth >= self.config.max_depth {
                    // Overflow chain (duplicate-heavy regions).
                    if next.is_invalid() {
                        let overflow = self.pool.allocate();
                        let mut chained = QuadNode::empty_leaf(node.depth, node.region);
                        let QuadNodeKind::Leaf { points, .. } = &mut chained.kind else {
                            unreachable!()
                        };
                        points.push((oid, point));
                        self.write_node(overflow, &chained)?;
                        *next = overflow;
                        self.write_node(page, &node)
                    } else {
                        let next = *next;
                        self.insert_into(next, oid, point)
                    }
                } else {
                    // Split: turn this leaf into an internal node and
                    // re-insert its points one quadrant down.
                    let old_points = std::mem::take(points);
                    debug_assert!(next.is_invalid(), "only max-depth leaves chain");
                    node.kind = QuadNodeKind::Internal {
                        children: vec![None; fan_out::<D>()],
                    };
                    self.write_node(page, &node)?;
                    for (o, p) in old_points {
                        self.insert_into(page, o, p)?;
                    }
                    self.insert_into(page, oid, point)
                }
            }
        }
    }

    /// All points whose coordinates fall inside `window`.
    pub fn query_window(&self, window: &Rect<D>) -> Result<Vec<(ObjectId, Point<D>)>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_raw(page)?;
            if !node.region.intersects(window) {
                continue;
            }
            match node.kind {
                QuadNodeKind::Leaf { points, next } => {
                    out.extend(points.into_iter().filter(|(_, p)| window.contains_point(p)));
                    if !next.is_invalid() {
                        stack.push(next);
                    }
                }
                QuadNodeKind::Internal { children } => {
                    stack.extend(children.into_iter().flatten());
                }
            }
        }
        Ok(out)
    }

    /// All stored points.
    pub fn all_objects(&self) -> Result<Vec<(ObjectId, Point<D>)>> {
        self.query_window(&self.config.bounds)
    }

    /// Checks structural invariants (region nesting, depths, chain rules,
    /// point placement), returning a description of the first violation.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let mut count = 0usize;
        self.validate_node(self.root, 0, &self.config.bounds, false, &mut count)?;
        if count != self.len {
            return Err(format!("tree reports len {} but holds {count}", self.len));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        page: PageId,
        depth: u8,
        region: &Rect<D>,
        is_chain: bool,
        count: &mut usize,
    ) -> std::result::Result<(), String> {
        let node = self
            .read_raw(page)
            .map_err(|e| format!("cannot read {page:?}: {e}"))?;
        if node.depth != depth {
            return Err(format!("node {page:?} depth {} != {depth}", node.depth));
        }
        if node.region != *region {
            return Err(format!("node {page:?} region mismatch"));
        }
        match node.kind {
            QuadNodeKind::Leaf { points, next } => {
                if points.len() > self.leaf_cap {
                    return Err(format!("leaf {page:?} over capacity"));
                }
                for (_, p) in &points {
                    if !region.contains_point(p) {
                        return Err(format!("point {p:?} outside leaf region"));
                    }
                }
                *count += points.len();
                if !next.is_invalid() {
                    if depth < self.config.max_depth {
                        return Err(format!("leaf {page:?} chains below max depth"));
                    }
                    self.validate_node(next, depth, region, true, count)?;
                }
                let _ = is_chain;
            }
            QuadNodeKind::Internal { children } => {
                if is_chain {
                    return Err("internal node in an overflow chain".to_owned());
                }
                if children.iter().all(Option::is_none) {
                    return Err(format!("internal node {page:?} with no children"));
                }
                for (q, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        let sub = quadrant_region(region, q);
                        self.validate_node(*child, depth + 1, &sub, false, count)?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl<const D: usize> SpatialIndex<D> for PrQuadtree<D> {
    /// Quadrant regions partition space; they are *not* minimal bounding
    /// rectangles, so MINMAXDIST bounds are invalid over them.
    const MINIMAL_REGIONS: bool = false;

    fn is_empty(&self) -> bool {
        PrQuadtree::is_empty(self)
    }

    fn len(&self) -> usize {
        PrQuadtree::len(self)
    }

    fn root_id(&self) -> NodeId {
        NodeId::from(self.root.0)
    }

    fn root_level(&self) -> u8 {
        // Levels decrease with depth; the deepest possible node still gets
        // level 1.
        self.config.max_depth + 1
    }

    fn root_region(&self) -> Result<Rect<D>> {
        Ok(self.config.bounds)
    }

    fn read_node(&self, id: NodeId) -> Result<IndexNode<D>> {
        let page = PageId(u32::try_from(id).expect("quadtree node ids are u32 pages"));
        let node = self.read_raw(page)?;
        let level = self.config.max_depth + 1 - node.depth;
        let mut entries = Vec::new();
        match node.kind {
            QuadNodeKind::Leaf { points, mut next } => {
                // Present the whole overflow chain as one logical node.
                for (oid, p) in points {
                    entries.push(IndexEntry::Object {
                        oid,
                        mbr: p.to_rect(),
                    });
                }
                while !next.is_invalid() {
                    let chained = self.read_raw(next)?;
                    let QuadNodeKind::Leaf { points, next: n } = chained.kind else {
                        return Err(sdj_storage::StorageError::Corrupt(
                            "internal node in overflow chain",
                        ));
                    };
                    for (oid, p) in points {
                        entries.push(IndexEntry::Object {
                            oid,
                            mbr: p.to_rect(),
                        });
                    }
                    next = n;
                }
            }
            QuadNodeKind::Internal { children } => {
                for (q, child) in children.iter().enumerate() {
                    if let Some(child) = child {
                        entries.push(IndexEntry::Child {
                            id: NodeId::from(child.0),
                            level: level - 1,
                            region: quadrant_region(&node.region, q),
                        });
                    }
                }
            }
        }
        Ok(IndexNode { level, entries })
    }

    fn min_subtree_objects(&self, _level: u8, _is_root: bool) -> u64 {
        // Quadtree nodes have no minimum fill; lazily allocated nodes are
        // merely non-empty.
        u64::from(self.len > 0)
    }

    fn io_misses(&self) -> u64 {
        self.pool.stats().misses
    }

    fn prefetch_nodes(&self, ids: &[NodeId]) {
        // Overflow chains hang off the head page; prefetching the head is
        // what a subsequent `read_node` faults first.
        let mut pages = [PageId::INVALID; 16];
        for chunk in ids.chunks(16) {
            for (slot, &id) in pages.iter_mut().zip(chunk) {
                *slot = PageId(u32::try_from(id).expect("quadtree node ids are u32 pages"));
            }
            self.pool.prefetch(&pages[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sdj_geom::Metric;

    fn unit() -> Rect<2> {
        Rect::new([0.0, 0.0], [1.0, 1.0])
    }

    fn random_points(n: usize, seed: u64) -> Vec<Point<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::xy(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect()
    }

    fn build(points: &[Point<2>], leaf_points: usize) -> PrQuadtree<2> {
        let mut t = PrQuadtree::new(QuadtreeConfig::small(unit(), leaf_points));
        for (i, p) in points.iter().enumerate() {
            t.insert(ObjectId(i as u64), *p).unwrap();
        }
        t
    }

    #[test]
    fn insert_and_retrieve_all() {
        let pts = random_points(500, 1);
        let tree = build(&pts, 4);
        tree.validate().unwrap();
        assert_eq!(tree.len(), 500);
        let mut ids: Vec<u64> = tree
            .all_objects()
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn window_query_matches_scan() {
        let pts = random_points(800, 2);
        let tree = build(&pts, 6);
        let window = Rect::new([0.2, 0.3], [0.6, 0.7]);
        let mut got: Vec<u64> = tree
            .query_window(&window)
            .unwrap()
            .iter()
            .map(|(o, _)| o.0)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| window.contains_point(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn duplicates_chain_at_max_depth() {
        let mut config = QuadtreeConfig::small(unit(), 3);
        config.max_depth = 4;
        let mut tree = PrQuadtree::new(config);
        for i in 0..50u64 {
            tree.insert(ObjectId(i), Point::xy(0.123, 0.456)).unwrap();
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 50);
        assert_eq!(tree.all_objects().unwrap().len(), 50);
        // Through the SpatialIndex view, the chain appears as one node.
        let mut stack = vec![SpatialIndex::root_id(&tree)];
        let mut seen = 0usize;
        while let Some(id) = stack.pop() {
            let node = SpatialIndex::read_node(&tree, id).unwrap();
            for e in &node.entries {
                match e {
                    IndexEntry::Object { .. } => seen += 1,
                    IndexEntry::Child { id, .. } => stack.push(*id),
                }
            }
        }
        assert_eq!(seen, 50);
    }

    #[test]
    fn spatial_index_levels_decrease() {
        let pts = random_points(300, 3);
        let tree = build(&pts, 4);
        let root = SpatialIndex::read_node(&tree, SpatialIndex::root_id(&tree)).unwrap();
        assert_eq!(root.level, SpatialIndex::root_level(&tree));
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for e in &node.entries {
                if let IndexEntry::Child { id, level, region } = e {
                    assert_eq!(*level, node.level - 1);
                    assert!(region.area() > 0.0);
                    let child = SpatialIndex::read_node(&tree, *id).unwrap();
                    assert_eq!(child.level, *level);
                    stack.push(child);
                }
            }
        }
    }

    #[test]
    fn nearest_point_via_regions_is_consistent() {
        // MINDIST to quadrant regions lower-bounds point distances (the
        // join's consistency requirement), even though regions are not
        // minimal.
        let pts = random_points(200, 4);
        let tree = build(&pts, 4);
        let q = Point::xy(0.5, 0.5);
        let root = SpatialIndex::read_node(&tree, SpatialIndex::root_id(&tree)).unwrap();
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            for e in &node.entries {
                match e {
                    IndexEntry::Object { mbr, .. } => {
                        let d = Metric::Euclidean.mindist_point_rect(&q, mbr);
                        assert!(d >= 0.0);
                    }
                    IndexEntry::Child { id, region, .. } => {
                        let child = SpatialIndex::read_node(&tree, *id).unwrap();
                        for ce in &child.entries {
                            let lb = Metric::Euclidean.mindist_rect_rect(region, &q.to_rect());
                            let cd = Metric::Euclidean.mindist_rect_rect(ce.rect(), &q.to_rect());
                            assert!(lb <= cd + 1e-12, "region bound must be consistent");
                        }
                        stack.push(child);
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside quadtree bounds")]
    fn out_of_bounds_rejected() {
        let mut tree = PrQuadtree::new(QuadtreeConfig::small(unit(), 4));
        tree.insert(ObjectId(0), Point::xy(2.0, 0.5)).unwrap();
    }

    #[test]
    fn boundary_points_accepted() {
        let mut tree = PrQuadtree::new(QuadtreeConfig::small(unit(), 2));
        for (i, (x, y)) in [(0.0, 0.0), (1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (0.5, 0.5)]
            .iter()
            .enumerate()
        {
            tree.insert(ObjectId(i as u64), Point::xy(*x, *y)).unwrap();
        }
        tree.validate().unwrap();
        assert_eq!(tree.all_objects().unwrap().len(), 5);
    }

    #[test]
    fn three_dimensional_octree() {
        let bounds: Rect<3> = Rect::new([0.0; 3], [1.0; 3]);
        let mut tree = PrQuadtree::new(QuadtreeConfig::<3>::small(bounds, 4));
        let mut rng = StdRng::seed_from_u64(9);
        for i in 0..200u64 {
            let p = Point::new([
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
                rng.random_range(0.0..1.0),
            ]);
            tree.insert(ObjectId(i), p).unwrap();
        }
        tree.validate().unwrap();
        assert_eq!(tree.len(), 200);
        assert_eq!(tree.all_objects().unwrap().len(), 200);
    }
}
