//! A paged PR quadtree (point-region trie) implementing the join engine's
//! [`SpatialIndex`] trait.
//!
//! §2.2 of the paper claims the incremental distance join "works for any
//! spatial data structure based on a hierarchical decomposition", naming
//! quadtrees as an example of an *unbalanced* structure whose node regions
//! are not minimal bounding rectangles. This crate makes that claim
//! executable: a classic PR quadtree — generalized to `2^D` hyperoctants,
//! so it is an octree at `D = 3` — stored one node per page on the same
//! simulated-disk substrate as the R\*-tree, joinable against itself *or
//! against an R-tree* through the same `DistanceJoin`.
//!
//! Structure:
//! * the root covers a fixed bounding region supplied at construction;
//! * leaves hold up to a page's worth of points, with overflow chains once
//!   the maximum depth is reached (duplicate-heavy data);
//! * an overflowing leaf above the depth limit splits into `2^D` lazily
//!   allocated quadrant children.
//!
//! Because quadrant regions are space partitions rather than minimal
//! bounding rectangles, [`SpatialIndex::MINIMAL_REGIONS`] is `false` and
//! the join automatically falls back from MINMAXDIST to MAXDIST bounds.

mod node;
mod persist;
mod tree;

pub use node::{QuadNode, QuadNodeKind};
pub use tree::{PrQuadtree, QuadtreeConfig};

pub use sdj_rtree::ObjectId;
