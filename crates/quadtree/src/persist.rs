//! Saving a PR quadtree to a file and reopening it later, mirroring the
//! R*-tree's persistence format.

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use sdj_geom::Rect;
use sdj_storage::persist::{read_u64, save_atomic, write_u64, PersistError};
use sdj_storage::{BufferPool, PageId, Pager};

use crate::tree::{PrQuadtree, QuadtreeConfig};

const MAGIC: &[u8; 8] = b"SDJQUAD1";

impl<const D: usize> PrQuadtree<D> {
    /// Writes the tree to `out` (header + full page image).
    pub fn save_to(&self, out: &mut impl Write) -> Result<(), PersistError> {
        out.write_all(MAGIC)?;
        write_u64(out, D as u64)?;
        write_u64(out, u64::from(self.root_page().0))?;
        write_u64(out, self.len() as u64)?;
        let c = self.config();
        write_u64(out, c.page_size as u64)?;
        write_u64(out, c.buffer_frames as u64)?;
        write_u64(out, u64::from(c.max_depth))?;
        for a in 0..D {
            write_u64(out, c.bounds.lo()[a].to_bits())?;
        }
        for a in 0..D {
            write_u64(out, c.bounds.hi()[a].to_bits())?;
        }
        self.pool().save_to(out)
    }

    /// Saves the tree to a file, atomically: the dump is written to a
    /// temporary sibling, fsynced, and renamed over `path`, so a crash
    /// mid-save never destroys an existing dump.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        save_atomic(path.as_ref(), |out| self.save_to(out))
    }

    /// Reads a tree back from a dump written by [`PrQuadtree::save_to`].
    pub fn load_from(input: &mut impl Read) -> Result<Self, PersistError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::Format("not a quadtree dump"));
        }
        if read_u64(input)? != D as u64 {
            return Err(PersistError::Format("dimension mismatch"));
        }
        let root = PageId(
            u32::try_from(read_u64(input)?).map_err(|_| PersistError::Format("bad root id"))?,
        );
        let len = read_u64(input)? as usize;
        let page_size = read_u64(input)? as usize;
        let buffer_frames = read_u64(input)? as usize;
        let max_depth =
            u8::try_from(read_u64(input)?).map_err(|_| PersistError::Format("bad max depth"))?;
        let mut lo = [0.0; D];
        let mut hi = [0.0; D];
        for v in &mut lo {
            *v = f64::from_bits(read_u64(input)?);
        }
        for v in &mut hi {
            *v = f64::from_bits(read_u64(input)?);
        }
        for a in 0..D {
            if !lo[a].is_finite() || !hi[a].is_finite() || lo[a] >= hi[a] {
                return Err(PersistError::Format("invalid bounds"));
            }
        }
        let config = QuadtreeConfig {
            bounds: Rect::new(lo, hi),
            page_size,
            buffer_frames,
            max_depth,
        };
        // Hard-bound the header before any allocation it controls (see the
        // R-tree loader).
        if buffer_frames == 0 || buffer_frames > 1 << 20 {
            return Err(PersistError::Format("implausible buffer frame count"));
        }
        let pager = Pager::load_from(input)?;
        if pager.page_size() != page_size {
            return Err(PersistError::Format("page size mismatch"));
        }
        let total = pager.capacity_pages();
        if (root.0 as usize) >= total {
            return Err(PersistError::Format("root page out of range"));
        }
        if len > total.saturating_mul(page_size) {
            return Err(PersistError::Format("length exceeds disk capacity"));
        }
        let pool = BufferPool::new(pager, buffer_frames);
        let tree = PrQuadtree::from_parts(pool, config, root, len);
        tree.validate()
            .map_err(|_| PersistError::Format("structural validation failed"))?;
        Ok(tree)
    }

    /// Opens a tree saved with [`PrQuadtree::save`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::load_from(&mut BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdj_geom::Point;
    use sdj_rtree::ObjectId;

    fn sample() -> PrQuadtree<2> {
        let bounds = Rect::new([0.0, 0.0], [1.0, 1.0]);
        let mut t = PrQuadtree::new(QuadtreeConfig::small(bounds, 4));
        for i in 0..200u64 {
            let p = Point::xy(
                ((i * 37) % 101) as f64 / 101.0,
                ((i * 73) % 89) as f64 / 89.0,
            );
            t.insert(ObjectId(i), p).unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let tree = sample();
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        let mut back = PrQuadtree::<2>::load_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back.len(), 200);
        back.validate().unwrap();
        let mut a = tree.all_objects().unwrap();
        let mut b = back.all_objects().unwrap();
        a.sort_by_key(|(o, _)| o.0);
        b.sort_by_key(|(o, _)| o.0);
        assert_eq!(a, b);
        // Still updatable.
        back.insert(ObjectId(999), Point::xy(0.999, 0.001)).unwrap();
        back.validate().unwrap();
        assert_eq!(back.len(), 201);
    }

    #[test]
    fn file_roundtrip() {
        let tree = sample();
        let path = std::env::temp_dir().join(format!("sdj_quad_{}.bin", std::process::id()));
        tree.save(&path).unwrap();
        let back = PrQuadtree::<2>::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), tree.len());
    }

    #[test]
    fn wrong_magic_rejected() {
        let tree = sample();
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            PrQuadtree::<2>::load_from(&mut bytes.as_slice()),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn truncated_dump_rejected_at_every_length() {
        let tree = sample();
        let mut bytes = Vec::new();
        tree.save_to(&mut bytes).unwrap();
        for cut in (0..bytes.len()).step_by(97.max(bytes.len() / 64)) {
            assert!(
                PrQuadtree::<2>::load_from(&mut &bytes[..cut]).is_err(),
                "truncation at {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn bit_flipped_header_never_panics() {
        let tree = sample();
        let mut clean = Vec::new();
        tree.save_to(&mut clean).unwrap();
        // Header for D = 2: magic + 6 u64 fields + 4 bounds words = 88 bytes.
        for bit in 0..88 * 8 {
            let mut bytes = clean.clone();
            bytes[bit / 8] ^= 1 << (bit % 8);
            if let Ok(t) = PrQuadtree::<2>::load_from(&mut bytes.as_slice()) {
                t.validate().unwrap();
            }
        }
    }

    #[test]
    fn oversized_header_fields_rejected() {
        let tree = sample();
        let mut clean = Vec::new();
        tree.save_to(&mut clean).unwrap();
        // Field offsets after the magic: dim, root, len, page_size,
        // buffer_frames, max_depth.
        for (field, value) in [
            (1usize, u64::MAX),       // root id out of u32
            (2, u64::MAX / 2),        // len beyond any capacity
            (3, u64::MAX),            // absurd page size
            (4, u64::from(u32::MAX)), // absurd frame count
            (4, 0),                   // zero frames (pool would assert)
        ] {
            let mut bytes = clean.clone();
            let at = 8 + field * 8;
            bytes[at..at + 8].copy_from_slice(&value.to_le_bytes());
            assert!(
                PrQuadtree::<2>::load_from(&mut bytes.as_slice()).is_err(),
                "oversized field {field} (= {value}) accepted"
            );
        }
    }
}
