//! Quadtree node representation and page serialization.
//!
//! Page layout (little endian):
//!
//! ```text
//! offset 0:        tag    u8   (0 = leaf, 1 = internal)
//! offset 1:        depth  u8
//! offset 2:        count  u16  (points in this page, leaves only)
//! offset 4:        region 2*D f64
//! then, leaves:    next   u32  (overflow page, INVALID if none)
//!                  count × { oid u64, coords D*f64 }
//! then, internal:  2^D × child page id u32 (INVALID = empty quadrant)
//! ```

use sdj_geom::{Point, Rect};
use sdj_storage::codec::{PageReader, PageWriter};
use sdj_storage::{PageId, Result, StorageError};

use sdj_rtree::ObjectId;

/// Fixed header bytes before the region.
pub(crate) const HEADER_SIZE: usize = 4;

/// Bytes of the serialized region for dimension `D`.
pub(crate) const fn region_size<const D: usize>() -> usize {
    16 * D
}

/// Bytes of one leaf point entry.
pub(crate) const fn point_entry_size<const D: usize>() -> usize {
    8 + 8 * D
}

/// Leaf capacity for a given page size.
pub(crate) const fn leaf_capacity<const D: usize>(page_size: usize) -> usize {
    (page_size - HEADER_SIZE - region_size::<D>() - 4) / point_entry_size::<D>()
}

/// Number of children of an internal node.
pub(crate) const fn fan_out<const D: usize>() -> usize {
    1 << D
}

/// Minimum page size able to hold an internal node for dimension `D`.
pub(crate) const fn min_internal_page<const D: usize>() -> usize {
    HEADER_SIZE + region_size::<D>() + 4 * fan_out::<D>()
}

/// The payload of a node.
#[derive(Clone, Debug, PartialEq)]
pub enum QuadNodeKind<const D: usize> {
    /// A leaf bucket of points, possibly chaining to an overflow page.
    Leaf {
        /// `(id, point)` entries stored in this page.
        points: Vec<(ObjectId, Point<D>)>,
        /// Next overflow page, [`PageId::INVALID`] if none.
        next: PageId,
    },
    /// An internal node with one optional child per hyperoctant.
    Internal {
        /// Child pages in quadrant order (bit `a` of the index set ⇔ upper
        /// half along axis `a`); `None` for empty quadrants.
        children: Vec<Option<PageId>>,
    },
}

/// A deserialized quadtree node.
#[derive(Clone, Debug, PartialEq)]
pub struct QuadNode<const D: usize> {
    /// Depth from the root (root = 0).
    pub depth: u8,
    /// Region of space this node covers.
    pub region: Rect<D>,
    /// Leaf or internal payload.
    pub kind: QuadNodeKind<D>,
}

impl<const D: usize> QuadNode<D> {
    /// A fresh empty leaf.
    #[must_use]
    pub fn empty_leaf(depth: u8, region: Rect<D>) -> Self {
        Self {
            depth,
            region,
            kind: QuadNodeKind::Leaf {
                points: Vec::new(),
                next: PageId::INVALID,
            },
        }
    }

    /// Serializes into a page buffer.
    pub fn encode(&self, buf: &mut [u8]) -> Result<()> {
        let mut w = PageWriter::new(buf);
        match &self.kind {
            QuadNodeKind::Leaf { points, next } => {
                w.put_u8(0)?;
                w.put_u8(self.depth)?;
                let count = u16::try_from(points.len())
                    .map_err(|_| StorageError::Corrupt("leaf count exceeds u16"))?;
                w.put_u16(count)?;
                encode_region(&mut w, &self.region)?;
                w.put_u32(next.0)?;
                for (oid, p) in points {
                    w.put_u64(oid.0)?;
                    for a in 0..D {
                        w.put_f64(p.coord(a))?;
                    }
                }
            }
            QuadNodeKind::Internal { children } => {
                debug_assert_eq!(children.len(), fan_out::<D>());
                w.put_u8(1)?;
                w.put_u8(self.depth)?;
                w.put_u16(0)?;
                encode_region(&mut w, &self.region)?;
                for child in children {
                    w.put_u32(child.map_or(PageId::INVALID.0, |c| c.0))?;
                }
            }
        }
        Ok(())
    }

    /// Deserializes from a page buffer.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let mut r = PageReader::new(buf);
        let tag = r.get_u8()?;
        let depth = r.get_u8()?;
        let count = r.get_u16()? as usize;
        let region = decode_region(&mut r)?;
        let kind = match tag {
            0 => {
                if count > leaf_capacity::<D>(buf.len()) {
                    return Err(StorageError::Corrupt("leaf count exceeds capacity"));
                }
                let next = PageId(r.get_u32()?);
                let mut points = Vec::with_capacity(count);
                for _ in 0..count {
                    let oid = ObjectId(r.get_u64()?);
                    let mut coords = [0.0; D];
                    for c in &mut coords {
                        *c = r.get_f64()?;
                        if !c.is_finite() {
                            return Err(StorageError::Corrupt("non-finite point"));
                        }
                    }
                    points.push((oid, Point::new(coords)));
                }
                QuadNodeKind::Leaf { points, next }
            }
            1 => {
                let mut children = Vec::with_capacity(fan_out::<D>());
                for _ in 0..fan_out::<D>() {
                    let raw = PageId(r.get_u32()?);
                    children.push((!raw.is_invalid()).then_some(raw));
                }
                QuadNodeKind::Internal { children }
            }
            _ => return Err(StorageError::Corrupt("unknown quadtree node tag")),
        };
        Ok(Self {
            depth,
            region,
            kind,
        })
    }
}

fn encode_region<const D: usize>(w: &mut PageWriter<'_>, region: &Rect<D>) -> Result<()> {
    for a in 0..D {
        w.put_f64(region.lo()[a])?;
    }
    for a in 0..D {
        w.put_f64(region.hi()[a])?;
    }
    Ok(())
}

fn decode_region<const D: usize>(r: &mut PageReader<'_>) -> Result<Rect<D>> {
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for v in &mut lo {
        *v = r.get_f64()?;
    }
    for v in &mut hi {
        *v = r.get_f64()?;
    }
    for a in 0..D {
        if !lo[a].is_finite() || !hi[a].is_finite() || lo[a] > hi[a] {
            return Err(StorageError::Corrupt("invalid quadtree region"));
        }
    }
    Ok(Rect::new(lo, hi))
}

/// Quadrant index of `p` within `region`: bit `a` set ⇔ `p` lies in the
/// upper half along axis `a`.
pub(crate) fn quadrant_of<const D: usize>(region: &Rect<D>, p: &Point<D>) -> usize {
    let center = region.center();
    let mut q = 0usize;
    for a in 0..D {
        if p.coord(a) >= center.coord(a) {
            q |= 1 << a;
        }
    }
    q
}

/// The sub-region of quadrant `q` of `region`.
pub(crate) fn quadrant_region<const D: usize>(region: &Rect<D>, q: usize) -> Rect<D> {
    let center = region.center();
    let mut lo = [0.0; D];
    let mut hi = [0.0; D];
    for a in 0..D {
        if q & (1 << a) != 0 {
            lo[a] = center.coord(a);
            hi[a] = region.hi()[a];
        } else {
            lo[a] = region.lo()[a];
            hi[a] = center.coord(a);
        }
    }
    Rect::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let node = QuadNode::<2> {
            depth: 3,
            region: Rect::new([0.0, 0.0], [1.0, 1.0]),
            kind: QuadNodeKind::Leaf {
                points: vec![
                    (ObjectId(7), Point::xy(0.25, 0.75)),
                    (ObjectId(u64::MAX), Point::xy(0.5, 0.5)),
                ],
                next: PageId(42),
            },
        };
        let mut buf = vec![0u8; 256];
        node.encode(&mut buf).unwrap();
        assert_eq!(QuadNode::<2>::decode(&buf).unwrap(), node);
    }

    #[test]
    fn internal_roundtrip_with_sparse_children() {
        let node = QuadNode::<2> {
            depth: 1,
            region: Rect::new([0.0, 0.0], [8.0, 8.0]),
            kind: QuadNodeKind::Internal {
                children: vec![Some(PageId(5)), None, None, Some(PageId(9))],
            },
        };
        let mut buf = vec![0u8; 128];
        node.encode(&mut buf).unwrap();
        assert_eq!(QuadNode::<2>::decode(&buf).unwrap(), node);
    }

    #[test]
    fn quadrant_math() {
        let region = Rect::new([0.0, 0.0], [4.0, 4.0]);
        assert_eq!(quadrant_of(&region, &Point::xy(1.0, 1.0)), 0);
        assert_eq!(quadrant_of(&region, &Point::xy(3.0, 1.0)), 1);
        assert_eq!(quadrant_of(&region, &Point::xy(1.0, 3.0)), 2);
        assert_eq!(quadrant_of(&region, &Point::xy(3.0, 3.0)), 3);
        // Center goes to the upper quadrant on both axes.
        assert_eq!(quadrant_of(&region, &Point::xy(2.0, 2.0)), 3);
        for q in 0..4 {
            let sub = quadrant_region(&region, q);
            assert_eq!(sub.area(), 4.0);
            assert!(region.contains_rect(&sub));
        }
        assert_eq!(
            quadrant_region(&region, 0),
            Rect::new([0.0, 0.0], [2.0, 2.0])
        );
        assert_eq!(
            quadrant_region(&region, 3),
            Rect::new([2.0, 2.0], [4.0, 4.0])
        );
    }

    #[test]
    fn octree_quadrants() {
        let region: Rect<3> = Rect::new([0.0; 3], [2.0; 3]);
        assert_eq!(fan_out::<3>(), 8);
        let p = Point::new([1.5, 0.5, 1.5]);
        assert_eq!(quadrant_of(&region, &p), 0b101);
        let sub = quadrant_region(&region, 0b101);
        assert!(sub.contains_point(&p));
    }

    #[test]
    fn capacity_math() {
        // 1024-byte page, 2-d: (1024 - 4 - 32 - 4) / 24 = 41 points.
        assert_eq!(leaf_capacity::<2>(1024), 41);
        assert!(min_internal_page::<2>() <= 1024);
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut buf = vec![0u8; 128];
        buf[0] = 9; // bad tag
        assert!(QuadNode::<2>::decode(&buf).is_err());
    }
}
