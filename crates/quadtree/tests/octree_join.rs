//! 3-D: the generalized quadtree is an octree, and the join engine runs over
//! it unchanged.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sdj_core::{DistanceJoin, JoinConfig, SemiConfig};
use sdj_geom::{Metric, Point, Rect};
use sdj_quadtree::{ObjectId, PrQuadtree, QuadtreeConfig};

const EPS: f64 = 1e-9;

fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point::new([
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
                rng.random_range(0.0..100.0),
            ])
        })
        .collect()
}

fn octree(points: &[Point<3>]) -> PrQuadtree<3> {
    let bounds: Rect<3> = Rect::new([0.0; 3], [100.0; 3]);
    let mut t = PrQuadtree::new(QuadtreeConfig::<3>::small(bounds, 6));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), *p).unwrap();
    }
    t
}

#[test]
fn octree_join_matches_bruteforce() {
    let a = random_points(100, 7);
    let b = random_points(160, 8);
    let o1 = octree(&a);
    let o2 = octree(&b);
    o1.validate().unwrap();
    o2.validate().unwrap();
    let got: Vec<f64> = DistanceJoin::new(&o1, &o2, JoinConfig::default())
        .take(300)
        .map(|r| r.distance)
        .collect();
    let mut want: Vec<f64> = a
        .iter()
        .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn octree_semi_join() {
    let a = random_points(60, 9);
    let b = random_points(110, 10);
    let o1 = octree(&a);
    let o2 = octree(&b);
    let results: Vec<(u64, f64)> =
        DistanceJoin::semi(&o1, &o2, JoinConfig::default(), SemiConfig::default())
            .map(|r| (r.oid1.0, r.distance))
            .collect();
    assert_eq!(results.len(), a.len());
    for (oid, d) in &results {
        let nn = b
            .iter()
            .map(|q| Metric::Euclidean.distance(&a[*oid as usize], q))
            .fold(f64::INFINITY, f64::min);
        assert!((d - nn).abs() < EPS);
    }
}
