//! The §2.2 genericity claim, executed: the same incremental distance join
//! runs over PR quadtrees — and over a quadtree joined *against an R-tree*
//! — and produces exactly the brute-force distance ordering.

use sdj_core::{
    DistanceJoin, DmaxStrategy, JoinConfig, SemiConfig, SemiFilter, TiePolicy, TraversalPolicy,
};
use sdj_datagen::{tiger, unit_box};
use sdj_geom::{Metric, Point, Rect};
use sdj_quadtree::{PrQuadtree, QuadtreeConfig};
use sdj_rtree::{ObjectId, RTree, RTreeConfig};

const EPS: f64 = 1e-9;

fn quad(points: &[Point<2>], leaf_points: usize) -> PrQuadtree<2> {
    let mut t = PrQuadtree::new(QuadtreeConfig::small(unit_box(), leaf_points));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), *p).unwrap();
    }
    t
}

fn rtree(points: &[Point<2>], fanout: usize) -> RTree<2> {
    let mut t = RTree::new(RTreeConfig::small(fanout));
    for (i, p) in points.iter().enumerate() {
        t.insert(ObjectId(i as u64), p.to_rect()).unwrap();
    }
    t
}

fn sets() -> (Vec<Point<2>>, Vec<Point<2>>) {
    (tiger::water_like(160, 77), tiger::roads_like(280, 77))
}

fn brute(a: &[Point<2>], b: &[Point<2>]) -> Vec<f64> {
    let mut out: Vec<f64> = a
        .iter()
        .flat_map(|p| b.iter().map(move |q| Metric::Euclidean.distance(p, q)))
        .collect();
    out.sort_by(|x, y| x.partial_cmp(y).unwrap());
    out
}

#[test]
fn quadtree_join_matches_bruteforce() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let q2 = quad(&b, 5);
    let want = brute(&a, &b);
    for traversal in [
        TraversalPolicy::Basic,
        TraversalPolicy::Even,
        TraversalPolicy::Simultaneous,
    ] {
        for tie in [TiePolicy::DepthFirst, TiePolicy::BreadthFirst] {
            let config = JoinConfig {
                traversal,
                tie,
                ..JoinConfig::default()
            };
            let got: Vec<f64> = DistanceJoin::new(&q1, &q2, config)
                .take(400)
                .map(|r| r.distance)
                .collect();
            assert_eq!(got.len(), 400);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < EPS, "{traversal:?}/{tie:?}");
            }
        }
    }
}

#[test]
fn mixed_quadtree_rtree_join() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let r2 = rtree(&b, 6);
    let want = brute(&a, &b);
    let got: Vec<f64> = DistanceJoin::new(&q1, &r2, JoinConfig::default())
        .take(500)
        .map(|r| r.distance)
        .collect();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
    // And the other way around.
    let r1 = rtree(&a, 6);
    let q2 = quad(&b, 5);
    let got: Vec<f64> = DistanceJoin::new(&r1, &q2, JoinConfig::default())
        .take(500)
        .map(|r| r.distance)
        .collect();
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn quadtree_full_join_complete() {
    let a = tiger::water_like(40, 5);
    let b = tiger::roads_like(55, 5);
    let q1 = quad(&a, 3);
    let q2 = quad(&b, 3);
    let got: Vec<f64> = DistanceJoin::new(&q1, &q2, JoinConfig::default())
        .map(|r| r.distance)
        .collect();
    let want = brute(&a, &b);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn quadtree_semijoin_all_strategies() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let q2 = quad(&b, 5);
    // Non-minimal regions: the engine must fall back to MAXDIST bounds and
    // stay exact for every d_max strategy.
    for dmax in [
        DmaxStrategy::None,
        DmaxStrategy::Local,
        DmaxStrategy::GlobalNodes,
        DmaxStrategy::GlobalAll,
    ] {
        let semi = SemiConfig {
            filter: SemiFilter::Inside2,
            dmax,
        };
        let got: Vec<(u64, f64)> = DistanceJoin::semi(&q1, &q2, JoinConfig::default(), semi)
            .map(|r| (r.oid1.0, r.distance))
            .collect();
        assert_eq!(got.len(), a.len(), "{dmax:?}");
        for (oid, d) in &got {
            let p = &a[*oid as usize];
            let nn = b
                .iter()
                .map(|q| Metric::Euclidean.distance(p, q))
                .fold(f64::INFINITY, f64::min);
            assert!((d - nn).abs() < EPS, "{dmax:?} oid {oid}");
        }
        for w in got.windows(2) {
            assert!(w[0].1 <= w[1].1 + EPS, "{dmax:?}");
        }
    }
}

#[test]
fn quadtree_join_with_max_pairs_estimation() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let q2 = quad(&b, 5);
    let want = brute(&a, &b);
    for k in [1usize, 25, 300] {
        let got: Vec<f64> =
            DistanceJoin::new(&q1, &q2, JoinConfig::default().with_max_pairs(k as u64))
                .map(|r| r.distance)
                .collect();
        assert_eq!(got.len(), k);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < EPS, "k={k}");
        }
    }
}

#[test]
fn quadtree_join_with_range() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let q2 = quad(&b, 5);
    let (dmin, dmax) = (0.02, 0.1);
    let got = DistanceJoin::new(&q1, &q2, JoinConfig::default().with_range(dmin, dmax)).count();
    let want = brute(&a, &b)
        .into_iter()
        .filter(|d| *d >= dmin && *d <= dmax)
        .count();
    assert_eq!(got, want);
}

#[test]
fn generic_nn_over_quadtree() {
    let (a, _) = sets();
    let q = quad(&a, 5);
    let target = Point::xy(0.5, 0.5);
    let got: Vec<f64> = sdj_core::nearest_neighbors(&q, target, Metric::Euclidean)
        .take(25)
        .map(|n| n.distance)
        .collect();
    let mut want: Vec<f64> = a
        .iter()
        .map(|p| Metric::Euclidean.distance(&target, p))
        .collect();
    want.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (g, w) in got.iter().zip(&want) {
        assert!((g - w).abs() < EPS);
    }
}

#[test]
fn quadtree_windowed_join() {
    let (a, b) = sets();
    let q1 = quad(&a, 5);
    let q2 = quad(&b, 5);
    let w1 = Rect::new([0.1, 0.1], [0.8, 0.8]);
    let got = DistanceJoin::new(&q1, &q2, JoinConfig::default())
        .with_windows(Some(w1), None)
        .count();
    let want = a.iter().filter(|p| w1.contains_point(p)).count() * b.len();
    assert_eq!(got, want);
}
