#!/bin/bash
cd /root/repo
R=results
mkdir -p $R
set -x
./target/release/exp_table1 --scale 1.0 > $R/table1.txt 2> $R/table1.log
./target/release/exp_fig6 --scale 1.0 > $R/fig6.txt 2> $R/fig6.log
./target/release/exp_fig7 --scale 1.0 > $R/fig7.txt 2> $R/fig7.log
./target/release/exp_fig8 --scale 1.0 > $R/fig8.txt 2> $R/fig8.log
./target/release/exp_fig9 --scale 1.0 > $R/fig9.txt 2> $R/fig9.log
./target/release/exp_fig10 --scale 1.0 > $R/fig10.txt 2> $R/fig10.log
./target/release/exp_swap_order --scale 1.0 > $R/swap_order.txt 2> $R/swap_order.log
./target/release/exp_alt_semijoin --scale 1.0 > $R/alt_semijoin.txt 2> $R/alt_semijoin.log
./target/release/exp_alt_join --scale 0.2 > $R/alt_join.txt 2> $R/alt_join.log
./target/release/exp_ablation --scale 0.2 > $R/ablation.txt 2> $R/ablation.log
echo ALL_EXPERIMENTS_DONE
