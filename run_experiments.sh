#!/bin/bash
# Full-scale experiment sweep. Each binary streams its observability events
# as NDJSON into results/<name>.ndjson via the SDJ_OBS_NDJSON sink (see
# sdj-bench::obs_from_env); tables go to .txt, progress chatter to .log.
cd /root/repo
R=results
mkdir -p $R
set -x
SDJ_OBS_NDJSON=$R/table1.ndjson ./target/release/exp_table1 --scale 1.0 > $R/table1.txt 2> $R/table1.log
SDJ_OBS_NDJSON=$R/fig6.ndjson ./target/release/exp_fig6 --scale 1.0 > $R/fig6.txt 2> $R/fig6.log
SDJ_OBS_NDJSON=$R/fig7.ndjson ./target/release/exp_fig7 --scale 1.0 > $R/fig7.txt 2> $R/fig7.log
SDJ_OBS_NDJSON=$R/fig8.ndjson ./target/release/exp_fig8 --scale 1.0 > $R/fig8.txt 2> $R/fig8.log
SDJ_OBS_NDJSON=$R/fig9.ndjson ./target/release/exp_fig9 --scale 1.0 > $R/fig9.txt 2> $R/fig9.log
SDJ_OBS_NDJSON=$R/fig10.ndjson ./target/release/exp_fig10 --scale 1.0 > $R/fig10.txt 2> $R/fig10.log
SDJ_OBS_NDJSON=$R/swap_order.ndjson ./target/release/exp_swap_order --scale 1.0 > $R/swap_order.txt 2> $R/swap_order.log
SDJ_OBS_NDJSON=$R/alt_semijoin.ndjson ./target/release/exp_alt_semijoin --scale 1.0 > $R/alt_semijoin.txt 2> $R/alt_semijoin.log
SDJ_OBS_NDJSON=$R/alt_join.ndjson ./target/release/exp_alt_join --scale 0.2 > $R/alt_join.txt 2> $R/alt_join.log
SDJ_OBS_NDJSON=$R/ablation.ndjson ./target/release/exp_ablation --scale 0.2 > $R/ablation.txt 2> $R/ablation.log
echo ALL_EXPERIMENTS_DONE
