//! Incremental distance join algorithms for spatial databases.
//!
//! A Rust reproduction of Hjaltason & Samet (SIGMOD 1998): the incremental
//! **distance join** and **distance semi-join**, together with every
//! substrate the paper's evaluation depends on. This facade crate simply
//! re-exports the workspace members under stable names:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geom`] | `sdj-geom` | points, rectangles, metrics, MINDIST/MAXDIST/MINMAXDIST |
//! | [`storage`] | `sdj-storage` | simulated paged disk + LRU buffer pool |
//! | [`rtree`] | `sdj-rtree` | R\*-tree with incremental nearest neighbour |
//! | [`pqueue`] | `sdj-pqueue` | pairing heap + hybrid memory/disk queue |
//! | [`quadtree`] | `sdj-quadtree` | PR quadtree (non-minimal regions) |
//! | [`join`] | `sdj-core` | **the paper's algorithms** |
//! | [`exec`] | `sdj-exec` | parallel executor with ordered stream merge |
//! | [`baselines`] | `sdj-baselines` | nested loop, NN semi-join, within-join |
//! | [`datagen`] | `sdj-datagen` | seeded TIGER-like workload generators |
//! | [`query`] | `sdj-query` | relations, predicates, `STOP AFTER` queries |
//! | [`obs`] | `sdj-obs` | events, metrics registry, run reports (DESIGN.md §7) |
//! | [`service`] | `sdj-service` | concurrent cursor sessions over a shared pool (DESIGN.md §16) |
//!
//! See the README for a tour and `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use incremental_distance_join::geom::Point;
//! use incremental_distance_join::join::{DistanceJoin, JoinConfig};
//! use incremental_distance_join::rtree::{ObjectId, RTree, RTreeConfig};
//!
//! let mut a = RTree::new(RTreeConfig::default());
//! let mut b = RTree::new(RTreeConfig::default());
//! for i in 0..50u64 {
//!     a.insert(ObjectId(i), Point::xy(i as f64, 0.0).to_rect()).unwrap();
//!     b.insert(ObjectId(i), Point::xy(i as f64, 3.0).to_rect()).unwrap();
//! }
//! let closest = DistanceJoin::new(&a, &b, JoinConfig::default()).next().unwrap();
//! assert_eq!(closest.distance, 3.0);
//! ```

pub use sdj_baselines as baselines;
pub use sdj_core as join;
pub use sdj_datagen as datagen;
pub use sdj_exec as exec;
pub use sdj_geom as geom;
pub use sdj_obs as obs;
pub use sdj_pqueue as pqueue;
pub use sdj_quadtree as quadtree;
pub use sdj_query as query;
pub use sdj_rtree as rtree;
pub use sdj_service as service;
pub use sdj_storage as storage;
