#!/bin/bash
# Resume the tail of run_experiments.sh; same NDJSON event logging.
cd /root/repo
R=results
mkdir -p $R
set -x
SDJ_OBS_NDJSON=$R/fig9.ndjson ./target/release/exp_fig9 --scale 1.0 > $R/fig9.txt 2> $R/fig9.log
SDJ_OBS_NDJSON=$R/fig10.ndjson ./target/release/exp_fig10 --scale 1.0 > $R/fig10.txt 2> $R/fig10.log
SDJ_OBS_NDJSON=$R/swap_order.ndjson ./target/release/exp_swap_order --scale 1.0 > $R/swap_order.txt 2> $R/swap_order.log
SDJ_OBS_NDJSON=$R/alt_semijoin.ndjson ./target/release/exp_alt_semijoin --scale 1.0 > $R/alt_semijoin.txt 2> $R/alt_semijoin.log
SDJ_OBS_NDJSON=$R/alt_join.ndjson ./target/release/exp_alt_join --scale 0.2 > $R/alt_join.txt 2> $R/alt_join.log
SDJ_OBS_NDJSON=$R/ablation.ndjson ./target/release/exp_ablation --scale 0.2 > $R/ablation.txt 2> $R/ablation.log
echo REMAINING_DONE
